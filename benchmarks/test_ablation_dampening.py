"""Section 5.1 ablation — dampening and cycle detection.

"We note that one could always enforce convergence of such iterations
by introducing a progressively increasing dampening factor."

The restaurant benchmark contains genuinely ambiguous chain twins that
oscillate under the plain iteration.  This bench compares three
convergence regimes:

1. plain iteration with cycle detection (the default),
2. dampening 0.3,
3. dampening 0.6,

and checks that alignment quality is unchanged by the regime while
every run terminates before the iteration cap.
"""

from __future__ import annotations

import pytest

from repro import ParisConfig, align
from repro.datasets import restaurant_benchmark
from repro.evaluation import evaluate_instances, render_table

from helpers import run_once, save_artifact

REGIMES = [
    ("cycle detection (default)", dict(dampening=0.0, detect_cycles=True)),
    ("dampening 0.3", dict(dampening=0.3, detect_cycles=False)),
    ("dampening 0.6", dict(dampening=0.6, detect_cycles=False)),
]


@pytest.mark.benchmark(group="ablation-dampening")
def test_ablation_dampening(benchmark):
    pair = restaurant_benchmark(seed=7)

    def sweep():
        outcomes = {}
        for label, options in REGIMES:
            result = align(
                pair.ontology1,
                pair.ontology2,
                ParisConfig(max_iterations=12, **options),
            )
            outcomes[label] = result
        return outcomes

    outcomes = run_once(benchmark, sweep)
    rows = []
    prfs = {}
    for label, result in outcomes.items():
        prf = evaluate_instances(result.assignment12, pair.gold)
        prfs[label] = prf
        rows.append([
            label, f"{prf.precision:.0%}", f"{prf.recall:.0%}",
            f"{prf.f1:.0%}", result.num_iterations,
            "yes" if result.converged else "no",
        ])
    save_artifact(
        "ablation_dampening",
        render_table(["Regime", "Prec", "Rec", "F", "iters", "converged"], rows),
    )

    reference = prfs["cycle detection (default)"]
    for label, prf in prfs.items():
        assert abs(prf.f1 - reference.f1) <= 0.05, label
    for label, result in outcomes.items():
        assert result.converged, f"{label} hit the iteration cap"
