"""Micro-benchmark: aggregate read throughput under concurrent writes.

The replication subsystem's headline number: a fleet of **3 read
replica processes** tailing the primary's WAL must serve **≥ 2× the
aggregate HTTP reads/second** of a single node, while the same write
load runs concurrently:

* the single-node path is ``repro serve --wal`` as-is: every
  ``GET /pair`` is handled in the write process and waits on the one
  engine lock whenever a warm pass is absorbing a delta — under
  back-to-back writes the lock is held almost continuously;
* the replicated path sends the same writes to the same primary, while
  reads go to 3 ``repro replica`` processes.  A replica coalesces its
  whole backlog into one warm pass per poll (fewer, shorter lock
  holds), its reads never compete with the primary's write work for a
  lock or an interpreter, and a reader blocked on one replica's apply
  does not stall the other two.

Both paths boot the same corpus from the same CLI, apply the same
deltas, and count reads only while their writer is running; rounds
alternate and the best round counts per path.  The wall-clock ratio is
machine-dependent twice over: shared runners stall (the in-test
assertion is skipped under ``BENCH_RELAX_WALLCLOCK=1``, the CI
bench-track mode), and the scale-out claim itself needs a core per
process — on fewer than :data:`MIN_CORES_FOR_SPEEDUP` cores
replication strictly adds CPU for the same logical writes, so the
curve is recorded without a floor (the same policy as the parallel
microbench's core gate).  On capable machines the JSON ``floor`` gates
the best-of-rounds value regardless of baseline.  The *work* metrics —
records replicated, replica count — are deterministic and
baseline-gated by ``benchmarks/compare_baseline.py``.  Replica
equivalence is asserted each round (every replica's full alignment
equals the primary's within 1e-9 once caught up), so the throughput
cannot be bought with wrong answers.

After the contention rounds, a mixed-query phase measures the
paginated read surface per shape (single pair, full cursor page-walk,
top-k, entity neighborhood, ``If-None-Match`` revalidation) against
one caught-up, write-idle replica; the per-shape rates are recorded as
additional informational series in ``BENCH_replica.json`` alongside
the original single-pair numbers.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from helpers import save_artifact, save_bench_json
from repro.datasets.incremental import family_addition, family_pair
from repro.rdf import ntriples
from repro.service import Delta

#: Families in the base corpus (3 instances, 8 facts each).
BASE_FAMILIES = 150

#: Families per delta (bigger deltas → longer warm passes → the engine
#: lock is what single-node readers actually contend with).
DELTA_FAMILIES = 16

#: Deltas POSTed during each measured window.
WRITES = 30

#: Alternating measurement rounds per path; the best round counts.
ROUNDS = 2

#: Read replica processes (and reader threads — one per replica in the
#: replicated path, the same number against the single node).
REPLICAS = 3

#: Required aggregate read-throughput advantage of 3 replicas.
MIN_SPEEDUP = 2.0

#: The claim is about scale-out: the primary and every replica process
#: need a core of their own before aggregate throughput can exceed the
#: single node (on fewer cores, replication strictly *adds* CPU work
#: for the same logical writes — the curve is recorded but the ratio
#: is a scheduling artifact, exactly as in the parallel microbench).
MIN_CORES_FOR_SPEEDUP = REPLICAS + 1

#: Required score equality of every replica against the primary.
SCORE_TOLERANCE = 1e-9

#: First listen port; the bench uses PORT .. PORT+1+REPLICAS.
PORT = int(os.environ.get("REPLICA_BENCH_PORT", "18790"))


def get_json(url: str, timeout: float = 30.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.load(response)


def wait_for(url: str, seconds: float = 120.0):
    deadline = time.monotonic() + seconds
    while True:
        try:
            return get_json(url, timeout=2)
        except (urllib.error.URLError, ConnectionError, OSError):
            if time.monotonic() > deadline:
                raise
            time.sleep(0.2)


def post_json(url: str, payload: dict, timeout: float = 300.0):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


def spawn(argv: list) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        env=os.environ.copy(),
        stderr=subprocess.DEVNULL,
    )


def terminate(process: subprocess.Popen) -> None:
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=60)
        except subprocess.TimeoutExpired:  # pragma: no cover - hung child
            process.kill()
            process.wait(timeout=10)


def round_deltas(round_index: int) -> list:
    """The same write workload for both paths of one round."""
    deltas = []
    base = BASE_FAMILIES + round_index * WRITES * DELTA_FAMILIES
    for step in range(WRITES):
        add1, add2 = family_addition(base + step * DELTA_FAMILIES, DELTA_FAMILIES)
        deltas.append(Delta(add1=tuple(add1), add2=tuple(add2)))
    return deltas


def measure_round(primary_url: str, read_urls: list, deltas: list) -> float:
    """POST the deltas back-to-back while reader threads hammer
    ``GET /pair`` on ``read_urls``; returns aggregate reads/second
    during the write window."""
    stop = threading.Event()
    go = threading.Barrier(len(read_urls) + 1)
    counts = [0] * len(read_urls)

    def reader(index: int, url: str) -> None:
        target = url + "/pair/p0a/q0a"
        go.wait()
        reads = 0
        while not stop.is_set():
            try:
                with urllib.request.urlopen(target, timeout=30) as response:
                    response.read()
                reads += 1
            except (urllib.error.URLError, OSError):  # pragma: no cover
                pass  # mid-window hiccups just cost the round reads
        counts[index] = reads

    threads = [
        threading.Thread(target=reader, args=(index, url), daemon=True)
        for index, url in enumerate(read_urls)
    ]
    for thread in threads:
        thread.start()
    go.wait()
    started = time.perf_counter()
    for delta in deltas:
        post_json(primary_url + "/delta", delta.to_json())
    elapsed = time.perf_counter() - started
    stop.set()
    for thread in threads:
        thread.join(timeout=60)
    return sum(counts) / elapsed


def await_catch_up(primary_url: str, replica_urls: list, seconds: float = 300.0):
    head = get_json(primary_url + "/stats")["wal_offset"]
    deadline = time.monotonic() + seconds
    for url in replica_urls:
        while get_json(url + "/stats")["wal_offset"] < head:
            assert time.monotonic() < deadline, f"{url} never caught up to {head}"
            time.sleep(0.2)
    return head


def alignment_map(url: str) -> dict:
    payload = get_json(url + "/alignment?threshold=0.001")
    return {
        (pair["left"], pair["right"]): pair["probability"]
        for pair in payload["pairs"]
    }


def assert_alignments_match(primary_url: str, replica_urls: list) -> float:
    reference = alignment_map(primary_url)
    worst = 0.0
    for url in replica_urls:
        candidate = alignment_map(url)
        assert candidate.keys() == reference.keys()
        for key, probability in reference.items():
            difference = abs(candidate[key] - probability)
            worst = max(worst, difference)
            assert difference <= SCORE_TOLERANCE, (key, difference)
    return worst


#: Requests per query shape in the mixed-read measurement.
SHAPE_REQUESTS = 40


def get_with_headers(url: str, headers: dict, timeout: float = 30.0):
    """(status, ETag) — 304 Not Modified is a result, not an error."""
    request = urllib.request.Request(url, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            response.read()
            return response.status, response.headers.get("ETag")
    except urllib.error.HTTPError as error:
        error.read()
        return error.code, error.headers.get("ETag")


def measure_query_shapes(url: str) -> dict:
    """Sequential requests/second per read shape of the paginated
    read path (``GET /alignment`` and friends), against one node at a
    stable state.  Complements the single-pair contention series: the
    pair read measures lock contention under writes, these measure the
    per-shape cost of the secondary-index surface."""

    def rate(fn, count: int = SHAPE_REQUESTS) -> float:
        fn()  # warm the connection / index snapshot path once
        started = time.perf_counter()
        for _ in range(count):
            fn()
        return count / (time.perf_counter() - started)

    def page_walk() -> None:
        cursor = None
        while True:
            suffix = f"&cursor={cursor}" if cursor else ""
            payload = get_json(url + "/alignment?limit=200" + suffix)
            cursor = payload["next_cursor"]
            if cursor is None:
                return

    _status, etag = get_with_headers(url + "/alignment?top=1", {})

    def revalidate() -> None:
        status, _etag = get_with_headers(
            url + "/alignment", {"If-None-Match": etag}
        )
        assert status == 304, status

    return {
        "pair": rate(lambda: get_json(url + "/pair/p0a/q0a")),
        "page_walk": rate(page_walk, count=5),
        "top": rate(lambda: get_json(url + "/alignment?top=10")),
        "entity": rate(lambda: get_json(url + "/alignment?entity=p0a")),
        "revalidate": rate(revalidate),
    }


def serve_args(work: Path, state_dir: Path, port: int) -> list:
    return [
        "serve",
        str(work / "left.nt"),
        str(work / "right.nt"),
        "--state-dir", str(state_dir),
        "--port", str(port),
        "--wal",
        "--wal-segment-bytes", str(1 << 16),
        "--max-lag-ms", "1",
        "--snapshot-every", "0",
    ]


def test_replica_read_throughput_vs_single_node(tmp_path):
    left, right = family_pair(BASE_FAMILIES)
    ntriples.write_ntriples(left, tmp_path / "left.nt")
    ntriples.write_ntriples(right, tmp_path / "right.nt")

    single_rates = []
    replicated_rates = []
    records_replicated = 0
    worst_difference = 0.0
    shape_rates = {}

    # Path A — single node: reads and writes share one process.
    single_url = f"http://127.0.0.1:{PORT}"
    single = spawn(serve_args(tmp_path, tmp_path / "single-state", PORT))
    try:
        wait_for(single_url + "/healthz")
        for round_index in range(ROUNDS):
            single_rates.append(
                measure_round(
                    single_url, [single_url] * REPLICAS, round_deltas(round_index)
                )
            )
    finally:
        terminate(single)

    # Path B — the same writes into a fresh primary, reads across 3
    # replica processes tailing its WAL on shared storage.
    primary_port = PORT + 1
    primary_url = f"http://127.0.0.1:{primary_port}"
    primary_state = tmp_path / "primary-state"
    processes = [spawn(serve_args(tmp_path, primary_state, primary_port))]
    replica_urls = [
        f"http://127.0.0.1:{primary_port + 1 + index}" for index in range(REPLICAS)
    ]
    try:
        wait_for(primary_url + "/healthz")
        for index, url in enumerate(replica_urls):
            processes.append(
                spawn(
                    [
                        "replica", str(primary_state),
                        "--port", str(primary_port + 1 + index),
                        "--poll-ms", "20",
                        "--replica-batch", "4096",
                    ]
                )
            )
        for url in replica_urls:
            wait_for(url + "/healthz")
        for round_index in range(ROUNDS):
            replicated_rates.append(
                measure_round(primary_url, replica_urls, round_deltas(round_index))
            )
            head = await_catch_up(primary_url, replica_urls)
            records_replicated += REPLICAS * WRITES
            assert head == (round_index + 1) * WRITES
        worst_difference = assert_alignments_match(primary_url, replica_urls)
        # Mixed query shapes against one caught-up, write-idle replica:
        # the per-shape cost of the paginated read surface.
        shape_rates = measure_query_shapes(replica_urls[0])
    finally:
        for process in processes:
            terminate(process)

    single_rate = max(single_rates)
    replicated_rate = max(replicated_rates)
    speedup = replicated_rate / single_rate
    cores = os.cpu_count() or 1

    rows = [
        f"(cpu cores: {cores})",
        f"base corpus:      {BASE_FAMILIES} families x 2 sides "
        f"({8 * BASE_FAMILIES * 2} triples)",
        f"write load:       {WRITES} deltas x {DELTA_FAMILIES} families per "
        f"round ({DELTA_FAMILIES * 8 * 2} triples each), "
        f"{ROUNDS} rounds per path",
        f"readers:          {REPLICAS} HTTP reader threads",
        f"single node:      {single_rate:8.0f} reads/s best of "
        f"{[f'{rate:.0f}' for rate in single_rates]}",
        f"3 replicas:       {replicated_rate:8.0f} reads/s best of "
        f"{[f'{rate:.0f}' for rate in replicated_rates]}",
        f"aggregate gain:   {speedup:8.1f} x",
        f"records shipped:  {records_replicated} "
        f"({REPLICAS} replicas x {WRITES} writes x {ROUNDS} rounds)",
        f"max score diff:   {worst_difference:.3e} "
        f"(tolerance {SCORE_TOLERANCE:.0e})",
        "mixed query shapes (one idle replica, requests/s; page_walk "
        "counts full walks):",
        *(
            f"  {shape:12s}  {shape_rate:8.0f} /s"
            for shape, shape_rate in shape_rates.items()
        ),
    ]
    save_artifact("microbench_replica", "\n".join(rows))
    save_bench_json(
        "replica",
        {
            # Deterministic metrics: gated against the committed
            # baseline by benchmarks/compare_baseline.py (CI bench-track).
            "replicas": {"value": REPLICAS},
            "records_replicated": {"value": records_replicated},
            # Wall-clock metrics: machine-dependent.  The acceptance
            # floor on the best-of-rounds speedup applies only on a
            # quiet machine with a core per process: below the core
            # floor the ratio is a scheduling artifact, and under
            # BENCH_RELAX_WALLCLOCK (CI bench-track on shared runners)
            # the repo's standing policy is to record wall-clock
            # curves, never gate on them (see the parallel bench).
            "read_speedup": {
                "value": speedup,
                "higher_is_better": True,
                "informational": True,
                **(
                    {"floor": MIN_SPEEDUP}
                    if cores >= MIN_CORES_FOR_SPEEDUP
                    and os.environ.get("BENCH_RELAX_WALLCLOCK") != "1"
                    else {}
                ),
            },
            "single_reads_per_sec": {
                "value": single_rate,
                "higher_is_better": True,
                "informational": True,
            },
            "replicated_reads_per_sec": {
                "value": replicated_rate,
                "higher_is_better": True,
                "informational": True,
            },
            # Per-shape read rates (wall-clock, informational like the
            # series above; `page_walk` counts whole cursor walks).
            **{
                f"reads_{shape}_per_sec": {
                    "value": shape_rate,
                    "higher_is_better": True,
                    "informational": True,
                }
                for shape, shape_rate in shape_rates.items()
            },
        },
    )

    assert records_replicated == REPLICAS * WRITES * ROUNDS
    if os.environ.get("BENCH_RELAX_WALLCLOCK") == "1":
        # bench-track mode: record the curve + JSON artifact, but skip
        # the in-test wall-clock assertion — shared CI runners stall
        # unpredictably (same policy as the parallel and stream
        # benches); on machines meeting the core floor, the JSON floor
        # still gates the best-of-rounds value.
        return
    if cores >= MIN_CORES_FOR_SPEEDUP:
        assert speedup >= MIN_SPEEDUP, (
            f"expected {REPLICAS} replicas to serve >= {MIN_SPEEDUP}x the "
            f"single node's aggregate reads/s under concurrent writes, got "
            f"{speedup:.1f}x ({single_rate:.0f} vs {replicated_rate:.0f} reads/s)"
        )
    else:
        pytest.skip(
            f"speedup assertion needs >= {MIN_CORES_FOR_SPEEDUP} cores "
            f"(one per process), machine has {cores}; curve recorded"
        )


def test_replica_smoke(tmp_path):
    """CI smoke: tiny corpus, one in-process replica, equality through
    the segmented WAL."""
    from repro.core.config import ParisConfig
    from repro.service import AlignmentService
    from repro.service.replica import ReplicaNode
    from repro.service.stream import WriteAheadLog

    left, right = family_pair(10)
    primary = AlignmentService.cold_start(left, right, ParisConfig())
    state_dir = tmp_path / "state"
    primary.snapshot(state_dir)
    wal = WriteAheadLog(state_dir / "wal.ndjson", segment_bytes=1024)
    for sequence, delta in enumerate(round_deltas(0)[:2], start=1):
        offset = wal.append(delta, "bench", sequence)
        primary.apply_delta(delta, wal_offset=offset)
    replica = ReplicaNode(state_dir, batch=4)
    replica.catch_up(primary.state.wal_offset)
    difference = replica.service.state.store.max_difference(primary.state.store)
    assert difference <= SCORE_TOLERANCE
    wal.close()
