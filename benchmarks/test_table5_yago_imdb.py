"""Table 5 — YAGO vs IMDb over iterations, plus the label baseline.

Paper values (instances): P/R 84/75 → 94/89 → 94/90 → 94/90 over four
iterations; relations reach 100 % precision / 80 % recall in both
directions; classes split asymmetrically (8 precise mappings one way,
135 k weak ones at 28 % the other way — the famous-people bias).  The
Section 6.4 baseline matching rdfs:label achieves 97 % precision but
only 70 % recall (F 82 %), which PARIS beats by a wide margin (F 92 %).
"""

from __future__ import annotations

import pytest

from repro import ParisConfig, align
from repro.baselines import align_by_labels
from repro.datasets import yago_imdb_pair
from repro.evaluation import (
    evaluate_classes,
    evaluate_instances,
    evaluate_relations,
    render_iteration_table,
    render_table,
)

from helpers import run_once, save_artifact


@pytest.mark.benchmark(group="table5")
def test_table5_yago_imdb_iterations(benchmark):
    pair = yago_imdb_pair()
    config = ParisConfig(max_iterations=4, convergence_threshold=0.0)
    result = run_once(
        benchmark, lambda: align(pair.ontology1, pair.ontology2, config)
    )

    baseline = align_by_labels(pair.ontology1, pair.ontology2)
    baseline_prf = evaluate_instances(baseline, pair.gold)
    paris_prf = evaluate_instances(result.assignment12, pair.gold)
    comparison = render_table(
        ["System", "Prec", "Rec", "F"],
        [
            ["paris", f"{paris_prf.precision:.0%}", f"{paris_prf.recall:.0%}",
             f"{paris_prf.f1:.0%}"],
            ["rdfs:label baseline", f"{baseline_prf.precision:.0%}",
             f"{baseline_prf.recall:.0%}", f"{baseline_prf.f1:.0%}"],
        ],
    )
    save_artifact(
        "table5_yago_imdb",
        render_iteration_table(result, pair.gold, class_threshold=0.0)
        + "\n\nSection 6.4 baseline comparison\n"
        + comparison,
    )

    # per-iteration improvement (79 → 91 → 92 → 92 in the paper)
    f1s = [
        evaluate_instances(snapshot.assignment12, pair.gold).f1
        for snapshot in result.iterations
    ]
    assert f1s[-1] > f1s[0]
    assert paris_prf.precision >= 0.85
    assert paris_prf.recall >= 0.80

    # relations: perfect precision, high recall, both directions
    for reverse in (False, True):
        relations = evaluate_relations(
            result.relation_pairs(reverse=reverse), pair.gold, reverse=reverse
        )
        assert relations.precision >= 0.9
        assert relations.recall >= 0.7

    # baseline: precise but recall-starved; PARIS recovers the recall
    assert baseline_prf.precision >= 0.9
    assert baseline_prf.recall <= 0.8
    assert paris_prf.f1 > baseline_prf.f1

    # class asymmetry: many weak yago→imdb mappings, few precise back
    weak = result.class_pairs(0.0)
    strong = result.class_pairs(0.0, reverse=True)
    assert len(weak) > len(strong)
    weak_precision = evaluate_classes(weak, pair.gold).precision
    strong_precision = evaluate_classes(strong, pair.gold, reverse=True).precision
    assert strong_precision > weak_precision
