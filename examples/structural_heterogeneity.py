"""Repairing structural heterogeneity with dereification (Section 7).

The paper's conclusion names this as PARIS's main limitation: one
ontology says ``wonAward(person, award)`` while the other models a
``WinningEvent`` entity with ``winner``/``award``/``year`` relations.
Plain PARIS cannot match across the two styles; the
:func:`repro.rdf.transforms.dereify` preprocessing collapses the event
entities into direct statements, after which alignment succeeds.

Run:  python examples/structural_heterogeneity.py
"""

from repro import OntologyBuilder, align
from repro.rdf.terms import Relation, Resource
from repro.rdf.transforms import dereify


def build_direct() -> "object":
    builder = OntologyBuilder("direct")
    laureates = [
        ("marie", "Marie Sklodowska", "prix:physics", "1903"),
        ("pierre", "Pierre Curie", "prix:physics", "1903"),
        ("henri", "Henri Becquerel", "prix:physics", "1903"),
        ("linus", "Linus Pauling", "prix:chemistry", "1954"),
    ]
    for person, name, award, _year in laureates:
        builder.value(person, "hasName", name)
        builder.fact(person, "wonAward", award)
    builder.value("prix:physics", "awardTitle", "Physics Prize")
    builder.value("prix:chemistry", "awardTitle", "Chemistry Prize")
    return builder.build()


def build_event_style() -> "object":
    builder = OntologyBuilder("events")
    people = [
        ("w1", "Marie Sklodowska"),
        ("w2", "Pierre Curie"),
        ("w3", "Henri Becquerel"),
        ("w4", "Linus Pauling"),
    ]
    for node, name in people:
        builder.value(node, "label", name)
    builder.value("aw1", "title", "Physics Prize")
    builder.value("aw2", "title", "Chemistry Prize")
    events = [
        ("ev1", "w1", "aw1", "1903"),
        ("ev2", "w2", "aw1", "1903"),
        ("ev3", "w3", "aw1", "1903"),
        ("ev4", "w4", "aw2", "1954"),
    ]
    for event, winner, award, year in events:
        builder.type(event, "WinningEvent")
        builder.fact(event, "winner", winner)
        builder.fact(event, "award", award)
        builder.value(event, "inYear", year)
    return builder.build()


def main() -> None:
    direct = build_direct()
    events = build_event_style()

    print("Without the transform:")
    naive = align(direct, events)
    award_score = naive.relations12.get(Relation("wonAward"), Relation("award"))
    print(f"  Pr(wonAward ⊆ award) = {award_score:.2f}  (no event bridging)")

    flattened = dereify(
        events,
        event_class=Resource("WinningEvent"),
        subject_relation=Relation("winner"),
        object_relation=Relation("award"),
        new_relation=Relation("won"),
        copy_relations=[(Relation("inYear"), Relation("wonInYear"))],
    )
    print(f"\nAfter dereify: {flattened!r}")
    repaired = align(direct, flattened)
    print("\nInstance matches:")
    for left, right, probability in sorted(
        repaired.instance_pairs(), key=lambda p: p[0].name
    ):
        print(f"  {left} ≡ {right}  ({probability:.2f})")
    print("\nRelation alignments:")
    for sub, sup, probability in repaired.relation_pairs(threshold=0.3):
        if not sub.inverted:
            print(f"  {sub} ⊆ {sup}  ({probability:.2f})")


if __name__ == "__main__":
    main()
