"""Movie-domain alignment vs a label-matching baseline (Table 5, §6.4).

Aligns a YAGO-style KB of famous people with an IMDb-style KB of the
whole movie world.  The naive rdfs:label matcher is precise but misses
every entity whose label was reformatted or word-swapped ("Sugata
Sanshirô" vs "Sanshiro Sugata"); PARIS recovers those through the
``actedIn`` structure.

Run:  python examples/movie_alignment.py
"""

from repro import ParisConfig, align
from repro.baselines import align_by_labels
from repro.datasets import yago_imdb_pair
from repro.evaluation import evaluate_instances, render_table
from repro.rdf.stats import statistics_table


def main() -> None:
    pair = yago_imdb_pair()
    print(statistics_table([pair.ontology1, pair.ontology2]))
    print(f"\nshared entities (gold): {pair.gold.num_instances}")

    baseline = align_by_labels(pair.ontology1, pair.ontology2)
    baseline_prf = evaluate_instances(baseline, pair.gold)

    config = ParisConfig(max_iterations=4, convergence_threshold=0.0)
    result = align(pair.ontology1, pair.ontology2, config)
    paris_prf = evaluate_instances(result.assignment12, pair.gold)

    print("\nInstance alignment quality:")
    print(
        render_table(
            ["System", "Prec", "Rec", "F"],
            [
                ["rdfs:label baseline", f"{baseline_prf.precision:.0%}",
                 f"{baseline_prf.recall:.0%}", f"{baseline_prf.f1:.0%}"],
                ["paris", f"{paris_prf.precision:.0%}",
                 f"{paris_prf.recall:.0%}", f"{paris_prf.f1:.0%}"],
            ],
        )
    )

    recovered = {
        left for left in result.assignment12 if left not in baseline
    }
    print(
        f"\nPARIS matched {len(recovered)} entities the label baseline "
        "could not (noisy or missing labels, recovered via structure)."
    )

    print("\nDiscovered relation alignments:")
    for sub, sup, probability in result.relation_pairs(threshold=0.2):
        if not sub.inverted:
            print(f"  {sub} ⊆ {sup}   ({probability:.2f})")


if __name__ == "__main__":
    main()
