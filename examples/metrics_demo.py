"""End-to-end demo of the observability surface.

Boots the three serving roles as subprocesses — a primary
(``repro serve --wal``), one read replica (``repro replica``) and the
read router (``repro route``) — pushes a few deltas and reads through
the router, then scrapes ``GET /metrics`` from *all three* roles and
cross-checks the core series against each role's ``GET /stats``:

* the exposition parses (``# HELP``/``# TYPE`` + samples, Prometheus
  text content type) on every role;
* the primary's ``repro_wal_appended_offset`` equals its ``/stats``
  WAL offset, and the caught-up replica's ``repro_wal_applied_offset``
  equals the primary's;
* ``repro_deltas_applied_total`` matches ``/stats`` ``deltas_applied``;
* ``repro_request_duration_seconds`` recorded the ``/pair`` and
  ``/delta`` traffic this script generated;
* the router reports both backends healthy and routed reads.

The CI service-smoke job runs this script verbatim and asserts its
exit code.  Run with::

    PYTHONPATH=src python examples/metrics_demo.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.datasets.incremental import family_addition, family_pair
from repro.rdf import ntriples
from repro.service.delta import Delta

BASE_FAMILIES = 20
WRITES = 3
PORT = int(os.environ.get("METRICS_DEMO_PORT", "8790"))


def wait_for(url: str, seconds: float = 120.0) -> dict:
    deadline = time.monotonic() + seconds
    while True:
        try:
            with urllib.request.urlopen(url, timeout=2) as response:
                return json.load(response)
        except (urllib.error.URLError, ConnectionError):
            if time.monotonic() > deadline:
                raise
            time.sleep(0.3)


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.load(response)


def scrape(base_url: str) -> dict:
    """Fetch ``/metrics`` and parse it into ``{series-with-labels: value}``."""
    with urllib.request.urlopen(base_url + "/metrics", timeout=30) as response:
        content_type = response.headers["Content-Type"]
        text = response.read().decode("utf-8")
    assert content_type.startswith("text/plain; version=0.0.4"), content_type
    series = {}
    for line in text.splitlines():
        assert line, "blank line in exposition"
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE ")), line
            continue
        name_part, value = line.rsplit(" ", 1)
        series[name_part] = float(value)
    return series


def series_sum(series: dict, prefix: str) -> float:
    return sum(value for key, value in series.items() if key.startswith(prefix))


def family_delta(index: int) -> Delta:
    add_left, add_right = family_addition(index, 1)
    return Delta(add1=tuple(add_left), add2=tuple(add_right))


def spawn(*argv: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv], env=os.environ.copy()
    )


def main() -> int:
    primary_url = f"http://127.0.0.1:{PORT}"
    replica_url = f"http://127.0.0.1:{PORT + 1}"
    router_url = f"http://127.0.0.1:{PORT + 2}"
    with tempfile.TemporaryDirectory(prefix="repro-metrics-demo-") as workdir:
        work = Path(workdir)
        left, right = family_pair(BASE_FAMILIES)
        ntriples.write_ntriples(left, work / "left.nt")
        ntriples.write_ntriples(right, work / "right.nt")
        state_dir = work / "state"

        primary = spawn(
            "--log-format", "json",
            "serve", str(work / "left.nt"), str(work / "right.nt"),
            "--state-dir", str(state_dir),
            "--port", str(PORT),
            "--wal",
            "--max-lag-ms", "20",
            "--snapshot-every", "0",
        )
        replica = router = None
        try:
            health = wait_for(primary_url + "/healthz")
            assert health["role"] == "primary", health
            # The healthz payload carries the durability picture.
            assert health["wal"]["appended_offset"] == 0
            assert health["degraded"] is None

            replica = spawn(
                "--log-format", "json",
                "replica", primary_url, "--port", str(PORT + 1), "--poll-ms", "20",
            )
            assert wait_for(replica_url + "/healthz")["role"] == "replica"
            router = spawn(
                "--log-format", "json",
                "route", "--primary", primary_url, "--replica", replica_url,
                "--port", str(PORT + 2), "--check-interval-ms", "200",
            )
            assert wait_for(router_url + "/healthz")["role"] == "router"
            deadline = time.monotonic() + 60
            while wait_for(router_url + "/healthz")["replicas_healthy"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.2)
            print("all three roles up")

            # Before any write the profile is the cold fixpoint's tree.
            cold_profile = wait_for(primary_url + "/stats")["last_align_profile"]
            assert cold_profile["span"] == "align.cold", cold_profile
            assert any(
                child["span"] == "pass.instance"
                for child in cold_profile.get("children", ())
            ), cold_profile

            for step in range(WRITES):
                report = post_json(
                    router_url + f"/delta?source=demo&seq={step + 1}",
                    family_delta(BASE_FAMILIES + step).to_json(),
                )
                assert report["converged"], report
            for step in range(WRITES):
                name = BASE_FAMILIES + step
                pair = wait_for(router_url + f"/pair/p{name}a/q{name}a")
                assert pair["probability"] > 0.9, pair
            deadline = time.monotonic() + 60
            while wait_for(replica_url + "/stats")["wal_offset"] < WRITES:
                assert time.monotonic() < deadline
                time.sleep(0.2)
            print(f"wrote {WRITES} deltas, replica caught up")

            # --- primary: WAL offsets and engine counters vs /stats ---
            primary_stats = wait_for(primary_url + "/stats")
            primary_metrics = scrape(primary_url)
            assert primary_metrics["repro_wal_appended_offset"] == WRITES
            assert primary_metrics["repro_wal_durable_offset"] == WRITES
            assert (
                primary_metrics["repro_wal_appended_offset"]
                == primary_stats["wal_offset"]
            )
            assert (
                primary_metrics["repro_deltas_applied_total"]
                == primary_stats["deltas_applied"]
            )
            assert (
                primary_metrics["repro_instance_pairs"]
                == primary_stats["instance_pairs"]
            )
            assert primary_metrics["repro_batcher_accepted_total"] == WRITES
            # The /delta POSTs and /metrics GET hit the request histogram.
            assert series_sum(
                primary_metrics, 'repro_request_duration_seconds_count{method="POST",route="/delta"'
            ) == WRITES
            # Each applied delta ran a warm pass; the live profile now
            # shows the incremental fixpoint's tree.
            assert primary_stats["last_align_profile"]["span"] == "align.warm"
            print("primary /metrics consistent with /stats")

            # --- replica: applied offset converged to the primary's ---
            replica_metrics = scrape(replica_url)
            assert replica_metrics["repro_wal_applied_offset"] == WRITES
            assert (
                replica_metrics["repro_wal_applied_offset"]
                == primary_metrics["repro_wal_appended_offset"]
            )
            assert replica_metrics["repro_replica_records_applied_total"] == WRITES
            assert replica_metrics["repro_replica_lag_records"] == 0
            assert series_sum(
                replica_metrics, 'repro_request_duration_seconds_count{method="GET",route="/pair"'
            ) > 0
            print("replica /metrics consistent with the primary's offsets")

            # --- router: backend health and routed traffic ---
            router_metrics = scrape(router_url)
            healthy = [
                value
                for key, value in router_metrics.items()
                if key.startswith("repro_router_backend_healthy")
            ]
            assert healthy and all(value == 1.0 for value in healthy), healthy
            assert router_metrics["repro_router_reads_routed_total"] >= WRITES
            assert router_metrics["repro_router_writes_forwarded_total"] == WRITES
            print("router /metrics shows healthy backends and routed traffic")
        finally:
            procs = [p for p in (router, replica, primary) if p is not None]
            for process in procs:
                if process.poll() is None:
                    process.send_signal(signal.SIGTERM)
            codes = [process.wait(timeout=60) for process in procs]
        assert codes == [0] * len(procs), f"expected clean shutdowns, got {codes}"
    print("metrics demo OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
