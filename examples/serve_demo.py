"""End-to-end demo of the incremental alignment service.

Boots ``repro serve`` as a subprocess on a generated fixture, pushes a
delta batch over HTTP, queries the pair it creates, and shuts the
server down cleanly — the full life of a living-KB alignment in ~30
lines of client code.  The CI service-smoke job runs this script
verbatim and asserts its exit code.

Run with::

    PYTHONPATH=src python examples/serve_demo.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.datasets.incremental import family_addition, family_pair
from repro.rdf import ntriples
from repro.service.delta import Delta, triple_to_json

BASE_FAMILIES = 40
PORT = int(os.environ.get("SERVE_DEMO_PORT", "8765"))


def wait_for(url: str, seconds: float = 60.0) -> dict:
    deadline = time.monotonic() + seconds
    while True:
        try:
            with urllib.request.urlopen(url, timeout=2) as response:
                return json.load(response)
        except (urllib.error.URLError, ConnectionError):
            if time.monotonic() > deadline:
                raise
            time.sleep(0.3)


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.load(response)


def main() -> int:
    base = f"http://127.0.0.1:{PORT}"
    with tempfile.TemporaryDirectory(prefix="repro-serve-demo-") as workdir:
        work = Path(workdir)
        left, right = family_pair(BASE_FAMILIES)
        ntriples.write_ntriples(left, work / "left.nt")
        ntriples.write_ntriples(right, work / "right.nt")

        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                str(work / "left.nt"),
                str(work / "right.nt"),
                "--state-dir",
                str(work / "state"),
                "--port",
                str(PORT),
            ],
            env=os.environ.copy(),
        )
        try:
            health = wait_for(base + "/healthz")
            print("service up:", health)
            assert health["status"] == "ok" and health["matched_left"] > 0

            # Push one new family to both sides as a delta batch.
            add_left, add_right = family_addition(BASE_FAMILIES, 1)
            delta = Delta(add1=tuple(add_left), add2=tuple(add_right))
            report = post_json(base + "/delta", delta.to_json())
            print("delta absorbed:", report)
            assert report["version"] == 1 and report["converged"]
            assert report["applied_add"] == len(add_left) + len(add_right)

            # The new family's persons must now be matched, strongly.
            new_left = add_left[0].subject.name
            new_right = new_left.replace("p", "q", 1)
            pair = wait_for(f"{base}/pair/{new_left}/{new_right}")
            print("pair after delta:", pair)
            assert pair["probability"] > 0.9, pair
            assert pair["best_counterpart_of_left"]["right"] == new_right

            alignment = wait_for(base + "/alignment?threshold=0.5")
            assert len(alignment["pairs"]) == (BASE_FAMILIES + 1) * 3
            print(f"alignment holds {len(alignment['pairs'])} pairs above 0.5")

            # Sanity-check the wire codec round-trips.
            assert Delta.from_json(delta.to_json()).to_json() == delta.to_json()
            assert triple_to_json(add_left[0])["subject"] == new_left
        finally:
            server.send_signal(signal.SIGTERM)
            code = server.wait(timeout=60)
        print("server exited with", code)
        assert code == 0, f"expected clean shutdown, got exit code {code}"
        assert (work / "state" / "LATEST").read_text().strip() == "1"
    print("serve demo OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
