"""Automated error forensics (the paper's Section 6.4 hand analysis).

The paper examines its remaining YAGO/IMDb errors by hand and finds
gold errors, near-duplicate movies (same cast and crew), and label
noise the naive string comparison cannot bridge.  This example runs the
movie benchmark and produces the same breakdown automatically, plus an
evidence explanation for one of the matches.

Run:  python examples/error_analysis.py
"""

from repro import ParisConfig, align
from repro.analysis import classify_errors, explain_match, render_explanation
from repro.datasets import yago_imdb_pair
from repro.evaluation import evaluate_instances


def main() -> None:
    pair = yago_imdb_pair()
    config = ParisConfig(max_iterations=4, convergence_threshold=0.0)
    result = align(pair.ontology1, pair.ontology2, config)

    prf = evaluate_instances(result.assignment12, pair.gold)
    print(f"instance alignment: {prf}")

    report = classify_errors(pair.ontology1, pair.ontology2, result, pair.gold)
    print("\nError breakdown (cf. the paper's Section 6.4 bullet list):")
    print(report.summary())

    print("\nSample false positives:")
    for case in report.false_positives[:5]:
        print(f"  {case.left} -> {case.produced} (expected {case.expected}): "
              f"{case.kind.value}  [{case.detail}]")

    print("\nSample false negatives:")
    for case in report.false_negatives[:5]:
        print(f"  {case.left} (expected {case.expected}): "
              f"{case.kind.value}  [{case.detail}]")

    # Explain one confirmed match in full detail.
    left, (right, _probability) = max(
        result.assignment12.items(), key=lambda item: item[1][1]
    )
    print("\nEvidence for the strongest match:")
    explanation = explain_match(
        pair.ontology1, pair.ontology2, result, left, right, config
    )
    print(render_explanation(explanation))


if __name__ == "__main__":
    main()
