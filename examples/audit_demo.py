"""End-to-end demo of fleet correctness auditing.

Boots a three-node fleet — a primary (``repro serve --wal``) and the
read router as subprocesses, plus **two in-process read replicas**
(so one of them can be corrupted from inside, which no HTTP surface
allows) — writes through the router, then:

* ``repro doctor PRIMARY --replicas A B --json`` reports the clean
  fleet consistent (exit 0): every node at the same WAL offset holds
  the *identical* 64-bit state digest, and each node's ``verify=1``
  self-check passes;
* the router's ``GET /fleet`` agrees;
* one replica's resident state is then corrupted in-process (one
  assignment score flipped in both the maintained assignment and the
  equivalence store, leaving the incremental digest stale — the shape
  of silent memory corruption);
* the corrupted node's **own background auditor** catches it within
  one interval: ``repro_audit_mismatch_total`` rises and its
  ``/healthz`` latches ``degraded`` with the offending pair;
* ``repro doctor`` (exit 1) names exactly that node ``DIVERGED`` —
  the other replica and the primary stay ``ok`` — and localizes the
  split to the first divergent pair via binary search over
  entity-range sub-digests.

The CI service-smoke job runs this script verbatim and asserts its
exit code.  Run with::

    PYTHONPATH=src python examples/audit_demo.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.datasets.incremental import family_addition, family_pair
from repro.rdf import ntriples
from repro.service.audit import StateAuditor
from repro.service.delta import Delta
from repro.service.replica import ReplicaNode
from repro.service.server import build_server

BASE_FAMILIES = 20
WRITES = 3
PORT = int(os.environ.get("AUDIT_DEMO_PORT", "8805"))


def wait_for(url: str, seconds: float = 120.0):
    deadline = time.monotonic() + seconds
    while True:
        try:
            with urllib.request.urlopen(url, timeout=2) as response:
                return json.load(response)
        except (urllib.error.URLError, ConnectionError):
            if time.monotonic() > deadline:
                raise
            time.sleep(0.3)


def post_json(url: str, payload: dict):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.load(response)


def scrape(base_url: str) -> dict:
    with urllib.request.urlopen(base_url + "/metrics", timeout=30) as response:
        text = response.read().decode("utf-8")
    series = {}
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        name_part, value = line.rsplit(" ", 1)
        series[name_part] = float(value)
    return series


def family_delta(index: int) -> Delta:
    add_left, add_right = family_addition(index, 1)
    return Delta(add1=tuple(add_left), add2=tuple(add_right))


def spawn(*argv: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv], env=os.environ.copy()
    )


def run_doctor(primary_url: str, replica_urls: list) -> tuple:
    argv = [sys.executable, "-m", "repro", "doctor", primary_url, "--json"]
    for url in replica_urls:
        argv += ["--replicas", url]
    completed = subprocess.run(
        argv, env=os.environ.copy(), capture_output=True, text=True, timeout=120
    )
    return completed.returncode, json.loads(completed.stdout)


def in_process_replica(primary_url: str, port: int):
    """One replica the demo can reach into: node + auditor + server.

    ``full_every=1`` makes every cycle recompute the full digest, so
    coherent assignment+store corruption (which the sampled row check
    cannot see — both resident copies agree) is caught within one
    interval.
    """
    node = ReplicaNode(primary_url, batch=8).start()
    auditor = StateAuditor(
        lambda: node.service,
        interval_ms=200,
        sample=8,
        full_every=1,
        role="replica",
    )
    node.auditor = auditor
    server = build_server(None, "127.0.0.1", port, replica=node, auditor=auditor)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    auditor.start()
    return node, auditor, server, thread


def corrupt(service) -> str:
    """Flip one pair's score in assignment *and* store, leaving the
    incremental digest stale — silent in-process state corruption."""
    with service.lock:
        entity, (counterpart, probability) = next(
            iter(service._assignment12.items())
        )
        corrupted = probability * 0.5
        service._assignment12[entity] = (counterpart, corrupted)
        service.state.store.set(entity, counterpart, corrupted)
    return entity.name


def main() -> int:
    primary_url = f"http://127.0.0.1:{PORT}"
    replica_urls = [f"http://127.0.0.1:{PORT + 1}", f"http://127.0.0.1:{PORT + 2}"]
    router_url = f"http://127.0.0.1:{PORT + 3}"
    with tempfile.TemporaryDirectory(prefix="repro-audit-demo-") as workdir:
        work = Path(workdir)
        left, right = family_pair(BASE_FAMILIES)
        ntriples.write_ntriples(left, work / "left.nt")
        ntriples.write_ntriples(right, work / "right.nt")

        primary = spawn(
            "--log-format", "json",
            "serve", str(work / "left.nt"), str(work / "right.nt"),
            "--state-dir", str(work / "state"),
            "--port", str(PORT),
            "--wal",
            "--max-lag-ms", "20",
            "--snapshot-every", "0",
            "--audit-interval-ms", "200",
        )
        router = None
        replicas = []
        try:
            assert wait_for(primary_url + "/healthz")["role"] == "primary"
            for port in (PORT + 1, PORT + 2):
                replicas.append(in_process_replica(primary_url, port))
            for url in replica_urls:
                assert wait_for(url + "/healthz")["role"] == "replica"
            router = spawn(
                "--log-format", "json",
                "route", "--primary", primary_url,
                "--replica", replica_urls[0], "--replica", replica_urls[1],
                "--port", str(PORT + 3), "--check-interval-ms", "200",
            )
            assert wait_for(router_url + "/healthz")["role"] == "router"
            print("fleet up: primary + 2 replicas + router")

            # --- write through the router, let the fleet converge -----
            for step in range(WRITES):
                report = post_json(
                    router_url + f"/delta?source=demo&seq={step + 1}",
                    family_delta(BASE_FAMILIES + step).to_json(),
                )
                assert report["converged"], report
            deadline = time.monotonic() + 60
            for url in replica_urls:
                while wait_for(url + "/stats")["wal_offset"] < WRITES:
                    assert time.monotonic() < deadline
                    time.sleep(0.2)
            print(f"wrote {WRITES} deltas through the router, replicas caught up")

            # --- clean fleet: doctor and /fleet agree ------------------
            code, verdict = run_doctor(primary_url, replica_urls)
            assert code == 0, verdict
            assert verdict["consistent"] is True, verdict
            assert all(n["verdict"] == "ok" for n in verdict["nodes"]), verdict
            digests = {n["digest"] for n in verdict["nodes"]}
            assert len(digests) == 1, verdict
            fleet = wait_for(router_url + "/fleet")
            assert fleet["consistent"] is True and fleet["divergent"] == []
            print(f"doctor: clean fleet, one digest {digests.pop()} on all 3 nodes")

            # --- corrupt one replica in-process ------------------------
            bad_url = replica_urls[1]
            bad_node, bad_auditor, _server, _thread = replicas[1]
            bad_entity = corrupt(bad_node.service)
            deadline = time.monotonic() + 30
            while bad_auditor.mismatches == 0:
                assert time.monotonic() < deadline, "auditor never caught it"
                time.sleep(0.05)
            health = wait_for(bad_url + "/healthz")
            assert health["status"] == "degraded", health
            assert "audit mismatch" in health["degraded"], health
            metrics = scrape(bad_url)
            assert metrics['repro_audit_mismatch_total{kind="digest"}'] >= 1
            stats = wait_for(bad_url + "/stats")
            assert stats["audit"]["last_mismatch"]["kind"] == "digest", stats
            print(
                f"corrupted pair of {bad_entity!r} on {bad_url}: its own "
                "auditor flagged it within one interval, /healthz degraded"
            )

            # --- doctor names exactly the corrupted node ---------------
            code, verdict = run_doctor(primary_url, replica_urls)
            assert code == 1, verdict
            assert verdict["consistent"] is False, verdict
            by_url = {n["url"]: n for n in verdict["nodes"]}
            assert by_url[primary_url]["verdict"] == "ok", verdict
            assert by_url[replica_urls[0]]["verdict"] == "ok", verdict
            assert by_url[bad_url]["verdict"] == "DIVERGED", verdict
            pair = by_url[bad_url]["first_divergent_pair"]
            assert pair is not None and pair["left"] == bad_entity, verdict
            assert pair["primary"]["probability"] != pair["node"]["probability"]
            print(
                "doctor: DIVERGENCE DETECTED on exactly the corrupted node, "
                f"first divergent pair ({pair['left']}, {pair['node']['right']})"
            )
        finally:
            for _node, auditor, server, thread in replicas:
                auditor.stop()
                server.shutdown()
                server.server_close()
                thread.join(timeout=10)
            for _node, _auditor, _server, _thread in replicas:
                _node.stop()
            procs = [p for p in (router, primary) if p is not None]
            for process in procs:
                if process.poll() is None:
                    process.send_signal(signal.SIGTERM)
            codes = [process.wait(timeout=60) for process in procs]
        assert codes == [0] * len(procs), f"expected clean shutdowns, got {codes}"
    print("audit demo OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
