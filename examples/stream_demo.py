"""End-to-end demo of streaming delta ingestion.

Boots ``repro serve --wal --watch`` as a subprocess on a generated
fixture, appends NDJSON deltas to the watched file, polls ``GET
/stats`` until the applied WAL offset catches up with the appended
one, asserts the new pairs converged via ``GET /pair``, exercises the
idempotent-redelivery path over HTTP, and SIGTERMs cleanly — the full
source → WAL → batcher → engine pipeline from the outside.  The CI
service-smoke job runs this script verbatim and asserts its exit code.

Run with::

    PYTHONPATH=src python examples/stream_demo.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.datasets.incremental import family_addition, family_pair
from repro.rdf import ntriples
from repro.service.delta import Delta

BASE_FAMILIES = 40
STREAMED_DELTAS = 3
PORT = int(os.environ.get("STREAM_DEMO_PORT", "8766"))


def wait_for(url: str, seconds: float = 60.0) -> dict:
    deadline = time.monotonic() + seconds
    while True:
        try:
            with urllib.request.urlopen(url, timeout=2) as response:
                return json.load(response)
        except (urllib.error.URLError, ConnectionError):
            if time.monotonic() > deadline:
                raise
            time.sleep(0.3)


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.load(response)


def family_delta(index: int) -> Delta:
    add_left, add_right = family_addition(index, 1)
    return Delta(add1=tuple(add_left), add2=tuple(add_right))


def main() -> int:
    base = f"http://127.0.0.1:{PORT}"
    with tempfile.TemporaryDirectory(prefix="repro-stream-demo-") as workdir:
        work = Path(workdir)
        left, right = family_pair(BASE_FAMILIES)
        ntriples.write_ntriples(left, work / "left.nt")
        ntriples.write_ntriples(right, work / "right.nt")
        watch = work / "deltas.ndjson"

        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                str(work / "left.nt"),
                str(work / "right.nt"),
                "--state-dir",
                str(work / "state"),
                "--port",
                str(PORT),
                "--wal",
                "--watch",
                str(watch),
                "--max-batch",
                "16",
                "--max-lag-ms",
                "50",
                "--snapshot-every",
                "0",  # durability comes from the WAL
            ],
            env=os.environ.copy(),
        )
        try:
            health = wait_for(base + "/healthz")
            print("service up:", health)
            assert health["status"] == "ok" and health["matched_left"] > 0

            # Append a burst of NDJSON deltas to the watched file —
            # no HTTP involved; the tailer picks them up.
            with watch.open("a", encoding="utf-8") as stream:
                for step in range(STREAMED_DELTAS):
                    delta = family_delta(BASE_FAMILIES + step)
                    stream.write(json.dumps(delta.to_json()) + "\n")
            print(f"appended {STREAMED_DELTAS} deltas to {watch.name}")

            # Poll /stats until the applied WAL offset catches up.
            deadline = time.monotonic() + 60
            while True:
                stats = wait_for(base + "/stats")
                ingest = stats["ingest"]
                if (
                    ingest["wal_appended"] >= STREAMED_DELTAS
                    and stats["wal_offset"] == ingest["wal_appended"]
                    and ingest["queue_depth"] == 0
                ):
                    break
                assert time.monotonic() < deadline, stats
                time.sleep(0.2)
            print("stats after catch-up:", stats)
            assert ingest["accepted"] == STREAMED_DELTAS
            assert stats["pairs_touched_total"] > 0
            assert stats["deltas_applied"] <= STREAMED_DELTAS  # coalescing

            # Every streamed family converged.
            for step in range(STREAMED_DELTAS):
                left_name = f"p{BASE_FAMILIES + step}a"
                right_name = f"q{BASE_FAMILIES + step}a"
                pair = wait_for(f"{base}/pair/{left_name}/{right_name}")
                assert pair["probability"] > 0.9, pair
            print("all streamed pairs converged")

            # HTTP writers share the same queue — with idempotent
            # redelivery via per-source sequence numbers.
            delta = family_delta(BASE_FAMILIES + STREAMED_DELTAS)
            report = post_json(base + "/delta?source=demo&seq=1", delta.to_json())
            assert report["converged"], report
            duplicate = post_json(base + "/delta?source=demo&seq=1", delta.to_json())
            assert duplicate == {"duplicate": True, "source": "demo", "seq": 1}
            print("idempotent redelivery OK")
        finally:
            server.send_signal(signal.SIGTERM)
            code = server.wait(timeout=60)
        print("server exited with", code)
        assert code == 0, f"expected clean shutdown, got exit code {code}"
        # The shutdown snapshot recorded the fully-applied WAL offset.
        assert (work / "state" / "wal.ndjson").exists()
        assert (work / "state" / "LATEST").read_text().strip() != "0"
    print("stream demo OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
