"""Aligning more than two ontologies (the paper's future work, §7).

Three independently derived views of the same person benchmark world
are aligned pairwise; mutual best matches are fused into entity
clusters (one per real-world entity, at most one member per ontology).

Run:  python examples/multi_ontology.py
"""

import random

from repro import align_many
from repro.datasets.names import date_iso, unique_person_names
from repro.rdf import OntologyBuilder


def build_views(num_persons: int = 60, seed: int = 99):
    """Three KBs over one hidden population, with per-KB fact dropping."""
    rng = random.Random(seed)
    names = unique_person_names(rng, num_persons)
    birthdays = [date_iso(rng, 1940, 1999) for _ in range(num_persons)]
    phones = [f"{rng.randint(200, 989)}-{rng.randint(200, 999)}-{rng.randint(0, 9999):04d}"
              for _ in range(num_persons)]
    views = []
    for which, (kb_name, name_rel, born_rel, phone_rel) in enumerate(
        [
            ("registry", "reg:fullName", "reg:dateOfBirth", "reg:telephone"),
            ("directory", "dir:who", "dir:born", "dir:phone"),
            ("archive", "arc:label", "arc:birthday", "arc:contact"),
        ]
    ):
        drop = random.Random(seed + which + 1)
        builder = OntologyBuilder(kb_name)
        for i in range(num_persons):
            node = f"{kb_name}:{i:03d}"
            builder.value(node, name_rel, names[i])
            if drop.random() > 0.15:
                builder.value(node, born_rel, birthdays[i])
            if drop.random() > 0.25:
                builder.value(node, phone_rel, phones[i])
        views.append(builder.build())
    return views


def main() -> None:
    views = build_views()
    for view in views:
        print(f"  {view!r}")

    result = align_many(views)
    print(f"\npairwise runs: {len(result.pairwise)}")
    full = result.clusters_spanning(3)
    partial = [c for c in result.clusters if len(c) == 2]
    print(f"clusters spanning all 3 ontologies: {len(full)}")
    print(f"clusters spanning 2 ontologies:     {len(partial)}")

    print("\nSample clusters:")
    for cluster in result.clusters[:5]:
        members = ", ".join(
            f"{name}:{resource}" for name, resource in sorted(cluster.members.items())
        )
        print(f"  [{cluster.confidence:.2f}] {members}")


if __name__ == "__main__":
    main()
