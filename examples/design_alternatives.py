"""Section 6.3 design-alternative experiments, end to end.

Three experiments from the paper, on the restaurant benchmark:

1. θ-sweep — the bootstrap value does not change the final result.
2. Negative evidence (Eq. 14) with strict literal identity — recall
   collapses because "most entities have slightly different attribute
   values".
3. Negative evidence with the normalized string measure — precision
   100 %, recall recovers.

Run:  python examples/design_alternatives.py
"""

from repro import NormalizedIdentitySimilarity, ParisConfig, align
from repro.datasets import restaurant_benchmark
from repro.evaluation import evaluate_instances, render_table


def main() -> None:
    pair = restaurant_benchmark()

    print("1. theta sweep (paper: results are independent of theta)")
    rows = []
    for theta in (0.01, 0.05, 0.1, 0.2):
        result = align(pair.ontology1, pair.ontology2, ParisConfig(theta=theta))
        prf = evaluate_instances(result.assignment12, pair.gold)
        rows.append([f"{theta:g}", f"{prf.precision:.0%}", f"{prf.recall:.0%}",
                     f"{prf.f1:.0%}"])
    print(render_table(["theta", "Prec", "Rec", "F"], rows))

    print("\n2.+3. negative evidence and string measures")
    configurations = [
        ("Eq.13, strict identity", ParisConfig()),
        ("Eq.14, strict identity", ParisConfig(use_negative_evidence=True)),
        (
            "Eq.14, normalized strings",
            ParisConfig(
                use_negative_evidence=True,
                literal_similarity=NormalizedIdentitySimilarity(),
            ),
        ),
    ]
    rows = []
    for label, config in configurations:
        result = align(pair.ontology1, pair.ontology2, config)
        prf = evaluate_instances(result.assignment12, pair.gold)
        rows.append([label, f"{prf.precision:.0%}", f"{prf.recall:.0%}",
                     f"{prf.f1:.0%}"])
    print(render_table(["Configuration", "Prec", "Rec", "F"], rows))
    print(
        "\nAs in the paper: strict identity + negative evidence makes PARIS\n"
        "give up most matches (formatting noise looks like contradiction);\n"
        "the normalized measure repairs precision AND recovers recall."
    )


if __name__ == "__main__":
    main()
