"""End-to-end demo of multi-replica serving.

Boots the full replication topology as subprocesses — a primary
(``repro serve --wal --wal-segment-bytes``), two read replicas
(``repro replica``: one tailing the shared state directory, one log
shipping over HTTP), and the read router (``repro route``) — then
exercises the whole contract from the outside: a write POSTed to the
*router* lands on the primary, both replicas converge to it (polled
via their ``/stats`` WAL offsets), bounded-staleness reads
(``?min_offset=``) are honored, a SIGKILLed replica is ejected while
reads keep flowing, and after a clean shutdown ``repro wal compact``
shrinks the log without breaking a fresh replica bootstrap.  The CI
service-smoke job runs this script verbatim and asserts its exit code.

Run with::

    PYTHONPATH=src python examples/replica_demo.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.datasets.incremental import family_addition, family_pair
from repro.rdf import ntriples
from repro.service.delta import Delta

BASE_FAMILIES = 30
WRITES = 4
PORT = int(os.environ.get("REPLICA_DEMO_PORT", "8780"))


def wait_for(url: str, seconds: float = 120.0) -> dict:
    deadline = time.monotonic() + seconds
    while True:
        try:
            with urllib.request.urlopen(url, timeout=2) as response:
                return json.load(response)
        except (urllib.error.URLError, ConnectionError):
            if time.monotonic() > deadline:
                raise
            time.sleep(0.3)


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.load(response)


def family_delta(index: int) -> Delta:
    add_left, add_right = family_addition(index, 1)
    return Delta(add1=tuple(add_left), add2=tuple(add_right))


def spawn(*argv: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv], env=os.environ.copy()
    )


def main() -> int:
    primary_url = f"http://127.0.0.1:{PORT}"
    replica_urls = [f"http://127.0.0.1:{PORT + 1}", f"http://127.0.0.1:{PORT + 2}"]
    router_url = f"http://127.0.0.1:{PORT + 3}"
    with tempfile.TemporaryDirectory(prefix="repro-replica-demo-") as workdir:
        work = Path(workdir)
        left, right = family_pair(BASE_FAMILIES)
        ntriples.write_ntriples(left, work / "left.nt")
        ntriples.write_ntriples(right, work / "right.nt")
        state_dir = work / "state"

        primary = spawn(
            "serve", str(work / "left.nt"), str(work / "right.nt"),
            "--state-dir", str(state_dir),
            "--port", str(PORT),
            "--wal",
            "--wal-segment-bytes", "2048",
            "--wal-group-commit-ms", "2",
            "--max-lag-ms", "20",
            "--snapshot-every", "0",
        )
        replicas = []
        router = None
        try:
            health = wait_for(primary_url + "/healthz")
            print("primary up:", health["role"], health["status"])
            assert health["role"] == "primary" and health["matched_left"] > 0

            # Replica 1 tails the shared state directory; replica 2
            # bootstraps and ships the log over HTTP — both transports
            # converge to the same engine state.
            replicas.append(
                spawn(
                    "replica", str(state_dir),
                    "--port", str(PORT + 1),
                    "--state-dir", str(work / "replica1-state"),
                    "--poll-ms", "20",
                )
            )
            replicas.append(
                spawn(
                    "replica", primary_url,
                    "--port", str(PORT + 2),
                    "--poll-ms", "20",
                )
            )
            for url in replica_urls:
                health = wait_for(url + "/healthz")
                assert health["role"] == "replica", health
            print("replicas up (file tail + http log shipping)")

            router = spawn(
                "route",
                "--primary", primary_url,
                "--replica", replica_urls[0],
                "--replica", replica_urls[1],
                "--port", str(PORT + 3),
                "--check-interval-ms", "200",
            )
            health = wait_for(router_url + "/healthz")
            assert health["role"] == "router", health
            deadline = time.monotonic() + 60
            while wait_for(router_url + "/healthz")["replicas_healthy"] < 2:
                assert time.monotonic() < deadline
                time.sleep(0.2)
            print("router up, both replicas in rotation")

            # Writes go through the router and land on the primary.
            for step in range(WRITES):
                report = post_json(
                    router_url + f"/delta?source=demo&seq={step + 1}",
                    family_delta(BASE_FAMILIES + step).to_json(),
                )
                assert report["converged"], report
            primary_offset = wait_for(primary_url + "/stats")["wal_offset"]
            assert primary_offset == WRITES
            print(f"wrote {WRITES} deltas through the router")

            # Both replicas converge to the primary's WAL offset.
            deadline = time.monotonic() + 60
            for url in replica_urls:
                while True:
                    stats = wait_for(url + "/stats")
                    if stats["wal_offset"] >= WRITES:
                        break
                    assert time.monotonic() < deadline, stats
                    time.sleep(0.2)
            print("both replicas caught up to offset", WRITES)

            # Bounded-staleness read through the router: only a replica
            # at the write's offset may answer.
            pair = wait_for(
                router_url
                + f"/pair/p{BASE_FAMILIES}a/q{BASE_FAMILIES}a?min_offset={WRITES}"
            )
            assert pair["probability"] > 0.9, pair
            print("read-your-writes via ?min_offset OK")

            # The write volume rotated the WAL into sealed segments
            # (no snapshot has covered them yet: --snapshot-every 0).
            live_wal_files = list(state_dir.glob("wal*.ndjson"))
            live_size = sum(path.stat().st_size for path in live_wal_files)
            assert len(live_wal_files) > 1, "expected sealed WAL segments"
            print(
                f"live WAL: {len(live_wal_files)} segment files, "
                f"{live_size} bytes"
            )

            # Kill one replica outright; the router ejects it and keeps
            # serving reads from the survivor.
            replicas[1].kill()
            replicas[1].wait(timeout=30)
            deadline = time.monotonic() + 60
            while wait_for(router_url + "/healthz")["replicas_healthy"] != 1:
                assert time.monotonic() < deadline
                time.sleep(0.2)
            for step in range(WRITES):
                name = BASE_FAMILIES + step
                pair = wait_for(router_url + f"/pair/p{name}a/q{name}a")
                assert pair["probability"] > 0.9, pair
            print("replica killed; reads still served")
        finally:
            # Replica 2 was SIGKILLed on purpose above; everything else
            # must exit 0 on SIGTERM.  Guard every index so a failure
            # before a process was spawned reports the root cause, not
            # an IndexError from teardown.
            survivors = [p for p in (router, *replicas[:1], primary) if p is not None]
            for process in (router, *replicas, primary):
                if process is not None and process.poll() is None:
                    process.send_signal(signal.SIGTERM)
            codes = [process.wait(timeout=60) for process in survivors]
        assert codes == [0] * len(survivors) and len(codes) == 3, (
            f"expected 3 clean shutdowns, got {codes}"
        )

        # The shutdown snapshot covers the whole WAL, and the serve
        # process compacts automatically after snapshotting: the sealed
        # segments are already gone and the log shrank on disk.
        size_after = sum(
            path.stat().st_size for path in state_dir.glob("wal*.ndjson")
        )
        assert size_after < live_size, (live_size, size_after)
        assert len(list(state_dir.glob("wal-*.ndjson"))) == 0
        print(f"auto-compaction at shutdown: {live_size} -> {size_after} bytes")

        # The offline tool is idempotent over the already-compacted log.
        compact = subprocess.run(
            [sys.executable, "-m", "repro", "wal", "compact",
             "--state-dir", str(state_dir)],
            env=os.environ.copy(),
        )
        assert compact.returncode == 0
        print("offline `repro wal compact` OK (idempotent)")

        # ...and a fresh replica still bootstraps from what remains.
        fresh = spawn(
            "replica", str(state_dir), "--port", str(PORT + 4), "--poll-ms", "20"
        )
        try:
            fresh_url = f"http://127.0.0.1:{PORT + 4}"
            stats = wait_for(fresh_url + "/stats")
            assert stats["wal_offset"] == WRITES, stats
            name = BASE_FAMILIES + WRITES - 1
            pair = wait_for(f"{fresh_url}/pair/p{name}a/q{name}a")
            assert pair["probability"] > 0.9, pair
            print("fresh bootstrap after compaction OK")
        finally:
            fresh.send_signal(signal.SIGTERM)
            assert fresh.wait(timeout=60) == 0
    print("replica demo OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
