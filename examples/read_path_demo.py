"""End-to-end demo of the production read path.

Boots ``repro serve`` as a subprocess, then walks the whole read
surface from plain client code: keyset pagination (concatenating
pages back into the full dump), top-k and per-entity neighborhood
queries, ``If-None-Match`` revalidation (a real 304 round-trip), and
one live ``/watch`` long-poll woken by a delta — exactly one
collapsed notification, deduped on re-poll.  The CI service-smoke job
runs this script verbatim and asserts its exit code.

Run with::

    PYTHONPATH=src python examples/read_path_demo.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.datasets.incremental import family_addition, family_pair
from repro.rdf import ntriples
from repro.service.delta import Delta

BASE_FAMILIES = 30
PORT = int(os.environ.get("READ_PATH_DEMO_PORT", "8775"))


def get(url: str, headers: dict | None = None, timeout: float = 60.0):
    """(status, headers, parsed body) — 304s come back, not raised."""
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            body = response.read()
            return response.status, response.headers, json.loads(body)
    except urllib.error.HTTPError as error:
        error.read()
        return error.code, error.headers, None


def wait_for(url: str, seconds: float = 120.0):
    deadline = time.monotonic() + seconds
    while True:
        try:
            status, headers, payload = get(url, timeout=2)
            if status == 200:
                return payload, headers
        except (urllib.error.URLError, ConnectionError):
            pass
        if time.monotonic() > deadline:
            raise TimeoutError(url)
        time.sleep(0.3)


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.load(response)


def main() -> int:
    base = f"http://127.0.0.1:{PORT}"
    with tempfile.TemporaryDirectory(prefix="repro-read-path-demo-") as workdir:
        work = Path(workdir)
        left, right = family_pair(BASE_FAMILIES)
        ntriples.write_ntriples(left, work / "left.nt")
        ntriples.write_ntriples(right, work / "right.nt")

        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                str(work / "left.nt"), str(work / "right.nt"),
                "--state-dir", str(work / "state"),
                "--port", str(PORT),
            ],
            env=os.environ.copy(),
        )
        try:
            wait_for(base + "/healthz")

            # -- pagination: pages concatenate back into the dump ----
            dump, dump_headers = wait_for(base + "/alignment")
            etag = dump_headers["ETag"]
            print(f"full dump: {len(dump['pairs'])} pairs, ETag {etag}")
            walked, cursor, pages = [], None, 0
            while True:
                url = base + "/alignment?limit=25" + (
                    f"&cursor={cursor}" if cursor else ""
                )
                status, _headers, page = get(url)
                assert status == 200
                assert not page["changed_since_cursor"]
                walked.extend(page["pairs"])
                pages += 1
                cursor = page["next_cursor"]
                if cursor is None:
                    break
            assert walked == dump["pairs"], "page walk must equal the dump"
            print(f"walked {pages} pages back into the same {len(walked)} pairs")

            # -- top-k and entity neighborhood -----------------------
            _status, _headers, top = get(base + "/alignment?top=3")
            assert top["pairs"] == dump["pairs"][:3]
            _status, _headers, hood = get(base + "/alignment?entity=p0a")
            assert hood["best_counterpart_as_left"]["right"] == "q0a"
            print("top-3 and neighborhood of p0a agree with the dump")

            # -- HTTP caching: a real 304 round-trip -----------------
            status, revalidated, _body = get(
                base + "/alignment", headers={"If-None-Match": etag}
            )
            assert status == 304 and revalidated["ETag"] == etag
            print(f"revalidation: 304 Not Modified for {etag}")

            # -- one live watch notification -------------------------
            add_left, add_right = family_addition(BASE_FAMILIES, 1)
            watched = add_left[0].subject.name  # a person the delta touches
            result = {}

            def watch():
                result["note"] = get(
                    f"{base}/watch?entity={watched}&epsilon=0.05&timeout=60",
                    timeout=90,
                )[2]

            poller = threading.Thread(target=watch)
            poller.start()
            time.sleep(0.5)  # make sure the poll is parked first
            delta = Delta(add1=tuple(add_left), add2=tuple(add_right))
            report = post_json(base + "/delta", delta.to_json())
            poller.join(timeout=90)
            note = result["note"]
            assert note and "timeout" not in note, note
            assert note["entity"] == watched and len(note["changes"]) == 1
            print(
                f"watch woke: {watched} -> "
                f"{note['changes'][0]['counterpart']} "
                f"p={note['changes'][0]['probability']:.3f} "
                f"(version {note['version']})"
            )
            # Re-polling past the delivered version dedups: timeout.
            _s, _h, replay = get(
                f"{base}/watch?entity={watched}"
                f"&after={note['version']}&timeout=0.2"
            )
            assert replay["timeout"] is True
            print("re-poll past the delivered version: deduped (timeout)")

            # The delta also moved the ETag: the old validator is stale.
            status, fresh, _body = get(
                base + "/alignment", headers={"If-None-Match": etag}
            )
            assert status == 200 and fresh["ETag"] != etag
            assert report["version"] == 1
        finally:
            server.send_signal(signal.SIGTERM)
            code = server.wait(timeout=60)
        assert code == 0, f"expected clean shutdown, got exit code {code}"
    print("read path demo OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
