"""Quickstart: align two tiny ontologies with PARIS.

Two knowledge bases describe the same two musicians with completely
different identifiers, relation names and class names.  PARIS discovers
the instance matches, the relation inclusions AND the class inclusions
in one run, with no configuration.

Run:  python examples/quickstart.py
"""

from repro import OntologyBuilder, align


def main() -> None:
    # Ontology 1: a small curated KB.
    left = (
        OntologyBuilder("curated")
        .value("person:elvis", "hasName", "Elvis Presley")
        .value("person:elvis", "bornOn", "1935-01-08")
        .fact("person:elvis", "bornIn", "place:tupelo")
        .value("place:tupelo", "placeName", "Tupelo")
        .value("person:cash", "hasName", "Johnny Cash")
        .value("person:cash", "bornOn", "1932-02-26")
        .fact("person:cash", "bornIn", "place:kingsland")
        .value("place:kingsland", "placeName", "Kingsland")
        .type("person:elvis", "Musician")
        .type("person:cash", "Musician")
        .type("place:tupelo", "Town")
        .type("place:kingsland", "Town")
        .build()
    )
    # Ontology 2: an automatically extracted KB — different vocabulary,
    # one fact missing, an extra person.
    right = (
        OntologyBuilder("extracted")
        .value("n1", "label", "Elvis Presley")
        .value("n1", "birthDate", "1935-01-08")
        .fact("n1", "birthPlace", "n2")
        .value("n2", "label", "Tupelo")
        .value("n3", "label", "Johnny Cash")
        .fact("n3", "birthPlace", "n4")
        .value("n4", "label", "Kingsland")
        .value("n5", "label", "Carl Perkins")
        .type("n1", "Artist")
        .type("n3", "Artist")
        .type("n5", "Artist")
        .type("n2", "Settlement")
        .type("n4", "Settlement")
        .build()
    )

    result = align(left, right)

    print(result.summary())
    print("\nInstance matches (maximal assignment):")
    for entity, counterpart, probability in sorted(
        result.instance_pairs(), key=lambda pair: pair[0].name
    ):
        print(f"  {entity}  ≡  {counterpart}   ({probability:.2f})")

    print("\nRelation inclusions (curated ⊆ extracted):")
    for sub, sup, probability in result.relation_pairs(threshold=0.2):
        print(f"  {sub}  ⊆  {sup}   ({probability:.2f})")

    print("\nClass inclusions:")
    for sub, sup, probability in result.class_pairs(threshold=0.2):
        print(f"  {sub}  ⊆  {sup}   ({probability:.2f})")
    for sub, sup, probability in result.class_pairs(threshold=0.2, reverse=True):
        print(f"  {sub}  ⊆  {sup}   ({probability:.2f})")


if __name__ == "__main__":
    main()
