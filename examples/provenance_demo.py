"""End-to-end demo of delta provenance and the staleness SLO surface.

Boots the three serving roles as subprocesses — a primary
(``repro serve --wal``), one read replica (``repro replica``) and the
read router (``repro route``) — then pushes a delta through the router
with an explicit ``X-Request-Id`` and follows it through the whole
pipeline:

* every role echoes the request id back (exactly once) on its
  responses;
* ``GET /provenance?trace=`` reconstructs the delta's stage timeline
  on the primary (ingest → enqueue → durable → applied → notified)
  and on the replica (shipped stamps + its own ``replica_applied``),
  each monotone;
* ``repro trace URL TRACE_ID --replicas ... --json`` merges the fleet
  into one time-sorted timeline containing both the primary's
  ``applied`` and the replica's ``replica_applied``;
* the stage histograms (``repro_delta_stage_seconds``) are non-empty
  for all four legs — ``ingest_to_durable`` / ``durable_to_applied`` /
  ``applied_to_notified`` on the primary, ``applied_to_replica`` on
  the replica — and the freshness gauges
  (``repro_freshness_seconds``) report a real age for the stages that
  fired.

The CI service-smoke job runs this script verbatim and asserts its
exit code.  Run with::

    PYTHONPATH=src python examples/provenance_demo.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.datasets.incremental import family_addition, family_pair
from repro.rdf import ntriples
from repro.service.delta import Delta

BASE_FAMILIES = 20
WRITES = 3
PORT = int(os.environ.get("PROVENANCE_DEMO_PORT", "8795"))

PRIMARY_STAGES = ("ingest", "enqueue", "durable", "applied", "notified")


def wait_for(url: str, seconds: float = 120.0, headers: dict = None):
    deadline = time.monotonic() + seconds
    while True:
        try:
            request = urllib.request.Request(url, headers=headers or {})
            with urllib.request.urlopen(request, timeout=2) as response:
                return json.load(response), response.headers
        except (urllib.error.URLError, ConnectionError):
            if time.monotonic() > deadline:
                raise
            time.sleep(0.3)


def post_json(url: str, payload: dict, headers: dict = None):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.load(response), response.headers


def scrape(base_url: str) -> dict:
    with urllib.request.urlopen(base_url + "/metrics", timeout=30) as response:
        text = response.read().decode("utf-8")
    series = {}
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        name_part, value = line.rsplit(" ", 1)
        series[name_part] = float(value)
    return series


def assert_monotone(timeline: dict, stages) -> None:
    stamped = [timeline[s] for s in stages if s in timeline]
    assert stamped == sorted(stamped), timeline


def family_delta(index: int) -> Delta:
    add_left, add_right = family_addition(index, 1)
    return Delta(add1=tuple(add_left), add2=tuple(add_right))


def spawn(*argv: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv], env=os.environ.copy()
    )


def main() -> int:
    primary_url = f"http://127.0.0.1:{PORT}"
    replica_url = f"http://127.0.0.1:{PORT + 1}"
    router_url = f"http://127.0.0.1:{PORT + 2}"
    with tempfile.TemporaryDirectory(prefix="repro-provenance-demo-") as workdir:
        work = Path(workdir)
        left, right = family_pair(BASE_FAMILIES)
        ntriples.write_ntriples(left, work / "left.nt")
        ntriples.write_ntriples(right, work / "right.nt")

        primary = spawn(
            "--log-format", "json",
            "serve", str(work / "left.nt"), str(work / "right.nt"),
            "--state-dir", str(work / "state"),
            "--port", str(PORT),
            "--wal",
            "--max-lag-ms", "20",
            "--snapshot-every", "0",
        )
        replica = router = None
        try:
            health, headers = wait_for(
                primary_url + "/healthz", headers={"X-Request-Id": "boot-probe"}
            )
            assert health["role"] == "primary", health
            assert headers.get_all("X-Request-Id") == ["boot-probe"], headers

            replica = spawn(
                "--log-format", "json",
                "replica", primary_url, "--port", str(PORT + 1), "--poll-ms", "20",
            )
            assert wait_for(replica_url + "/healthz")[0]["role"] == "replica"
            router = spawn(
                "--log-format", "json",
                "route", "--primary", primary_url, "--replica", replica_url,
                "--port", str(PORT + 2), "--check-interval-ms", "200",
            )
            assert wait_for(router_url + "/healthz")[0]["role"] == "router"
            print("all three roles up, request ids echoed")

            # --- write through the router with explicit request ids ---
            traces = []
            for step in range(WRITES):
                trace = f"prov-demo-{step}"
                report, headers = post_json(
                    router_url + f"/delta?source=demo&seq={step + 1}",
                    family_delta(BASE_FAMILIES + step).to_json(),
                    headers={"X-Request-Id": trace},
                )
                assert report["converged"], report
                # One echo — the router's own, not stacked on the
                # primary's.
                assert headers.get_all("X-Request-Id") == [trace], headers
                traces.append(trace)
            deadline = time.monotonic() + 60
            while wait_for(replica_url + "/stats")[0]["wal_offset"] < WRITES:
                assert time.monotonic() < deadline
                time.sleep(0.2)
            print(f"wrote {WRITES} traced deltas, replica caught up")

            # --- per-role timelines -------------------------------------
            trace = traces[0]
            primary_view, _ = wait_for(
                primary_url + f"/provenance?trace={trace}"
            )
            assert primary_view["found"] and primary_view["role"] == "primary"
            for stage in ("ingest", "enqueue", "durable", "applied"):
                assert stage in primary_view["timeline"], primary_view
            assert_monotone(primary_view["timeline"], PRIMARY_STAGES)

            replica_view, _ = wait_for(
                replica_url + f"/provenance?trace={trace}"
            )
            assert replica_view["found"] and replica_view["role"] == "replica"
            assert "replica_applied" in replica_view["timeline"], replica_view
            assert "ingest" in replica_view["timeline"], replica_view
            print("primary and replica timelines reconstructed and monotone")

            # --- the merged fleet view: repro trace ---------------------
            merged = json.loads(
                subprocess.check_output(
                    [
                        sys.executable, "-m", "repro", "trace",
                        primary_url, trace,
                        "--replicas", replica_url, "--json",
                    ],
                    env=os.environ.copy(),
                ).decode("utf-8")
            )
            stages = [row["stage"] for row in merged["timeline"]]
            timestamps = [row["ts"] for row in merged["timeline"]]
            assert timestamps == sorted(timestamps), merged
            assert stages.index("ingest") < stages.index("applied"), stages
            assert "replica_applied" in stages, stages
            roles = {row["stage"]: row["role"] for row in merged["timeline"]}
            assert roles["applied"] == "primary", roles
            assert roles["replica_applied"] == "replica", roles
            print("repro trace merged the fleet into one timeline:", stages)

            # --- stage histograms + freshness gauges --------------------
            primary_metrics = scrape(primary_url)
            for leg in ("ingest_to_durable", "durable_to_applied",
                        "applied_to_notified"):
                count = primary_metrics[
                    f'repro_delta_stage_seconds_count{{stage="{leg}"}}'
                ]
                assert count >= WRITES, (leg, count)
            replica_metrics = scrape(replica_url)
            assert replica_metrics[
                'repro_delta_stage_seconds_count{stage="applied_to_replica"}'
            ] >= WRITES
            assert primary_metrics['repro_freshness_seconds{stage="applied"}'] >= 0
            assert replica_metrics[
                'repro_freshness_seconds{stage="replica_applied"}'
            ] >= 0
            # A stage this role never witnesses reports -1, not a lie.
            assert primary_metrics[
                'repro_freshness_seconds{stage="replica_applied"}'
            ] == -1
            print("all four stage-histogram legs populated, freshness live")
        finally:
            procs = [p for p in (router, replica, primary) if p is not None]
            for process in procs:
                if process.poll() is None:
                    process.send_signal(signal.SIGTERM)
            codes = [process.wait(timeout=60) for process in procs]
        assert codes == [0] * len(procs), f"expected clean shutdowns, got {codes}"
    print("provenance demo OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
