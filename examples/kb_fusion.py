"""Holistic KB alignment: the YAGO/DBpedia-style experiment (Tables 3–4).

Aligns two encyclopedic knowledge bases with independently designed
schemas.  PARIS discovers instance matches AND the schema mapping —
including inverse relations (``actedIn`` vs ``starring⁻``), relations
split by target type (``created`` vs ``author``/``writer``/``artist``),
and class inclusions across a fine-grained and a shallow taxonomy.

Run:  python examples/kb_fusion.py
"""

from repro import ParisConfig, align
from repro.datasets import yago_dbpedia_pair
from repro.datasets.kb import KB_EXCLUDED_CLASSES
from repro.evaluation import (
    class_threshold_sweep,
    render_iteration_table,
    render_relation_alignments,
    render_threshold_sweep,
)
from repro.rdf.stats import statistics_table


def main() -> None:
    pair = yago_dbpedia_pair()
    print(statistics_table([pair.ontology1, pair.ontology2]))
    print(f"\nshared instances (gold): {pair.gold.num_instances}")

    config = ParisConfig(max_iterations=4, convergence_threshold=0.0)
    result = align(pair.ontology1, pair.ontology2, config)

    print("\nPer-iteration report (Table 3 layout):")
    print(render_iteration_table(result, pair.gold, class_threshold=0.4))

    print("\nDiscovered relation alignments (Table 4 layout):")
    print("  yago ⊆ DBpedia:")
    print(render_relation_alignments(result, threshold=0.1, limit=20))
    print("\n  DBpedia ⊆ yago:")
    print(render_relation_alignments(result, threshold=0.1, reverse=True, limit=20))

    print("\nClass-alignment threshold sweep (Figures 1 & 2):")
    points = class_threshold_sweep(
        result.classes12, pair.gold, exclude=KB_EXCLUDED_CLASSES
    )
    print(render_threshold_sweep(points))


if __name__ == "__main__":
    main()
