"""OAEI-style benchmark run (Table 1 of the paper).

Generates the synthetic restaurant benchmark — two restaurant listings
with disjoint vocabularies and realistic formatting noise — runs PARIS,
and prints a Table-1 style report with the ObjectCoref comparator's
published F-measure.

Run:  python examples/oaei_restaurants.py
"""

from repro import align
from repro.baselines import OBJECTCOREF_RESULTS, self_training_matcher
from repro.datasets import restaurant_benchmark
from repro.evaluation import (
    evaluate_classes,
    evaluate_instances,
    evaluate_relations,
    render_table,
)


def main() -> None:
    pair = restaurant_benchmark()
    print(f"benchmark: {pair}")
    print(f"  {pair.ontology1!r}")
    print(f"  {pair.ontology2!r}")

    result = align(pair.ontology1, pair.ontology2)
    print(f"\nconverged after {result.num_iterations} iterations")

    instances = evaluate_instances(result.assignment12, pair.gold)
    relations = evaluate_relations(result.relation_pairs(), pair.gold)
    classes = evaluate_classes(result.class_pairs(threshold=0.4), pair.gold)

    stand_in = self_training_matcher(pair.ontology1, pair.ontology2)
    stand_in_prf = evaluate_instances(stand_in, pair.gold)
    reported = OBJECTCOREF_RESULTS["restaurant"]

    print()
    print(
        render_table(
            ["System", "Inst-P", "Inst-R", "Inst-F"],
            [
                ["paris", f"{instances.precision:.0%}",
                 f"{instances.recall:.0%}", f"{instances.f1:.0%}"],
                ["self-training stand-in", f"{stand_in_prf.precision:.0%}",
                 f"{stand_in_prf.recall:.0%}", f"{stand_in_prf.f1:.0%}"],
                ["ObjectCoref (reported)", "-", "-", f"{reported.f1:.0%}"],
            ],
        )
    )
    print(f"\nrelations: {relations}")
    print(f"classes:   {classes}")

    print("\nSample matches:")
    for left, (right, probability) in list(result.assignment12.items())[:5]:
        print(f"  {left} ≡ {right}  ({probability:.3f})")


if __name__ == "__main__":
    main()
