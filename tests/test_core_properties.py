"""Property-based tests on the probabilistic model's invariants.

Random small ontology pairs are generated and aligned; regardless of
the inputs:

* every stored probability lies in ``(0, 1]``,
* the equivalence store stays symmetric between its two indexes,
* maximal assignments are injective per side (one counterpart each),
* alignment is deterministic,
* aligning an ontology against a *renamed copy* of itself recovers the
  identity mapping whenever values are unique.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import OntologyBuilder, ParisConfig, align
from repro.rdf.terms import Resource

# Small world: a handful of subjects, relations, values.
subjects = st.integers(min_value=0, max_value=5)
relations = st.sampled_from(["r1", "r2", "r3"])
values = st.sampled_from(["u", "v", "w", "x", "y", "z"])
fact = st.tuples(subjects, relations, values)
fact_lists = st.lists(fact, min_size=1, max_size=15)


def build_pair(facts1, facts2):
    builder1 = OntologyBuilder("left")
    for subject, relation, value in facts1:
        builder1.value(f"a{subject}", f"L{relation}", value)
    builder2 = OntologyBuilder("right")
    for subject, relation, value in facts2:
        builder2.value(f"b{subject}", f"R{relation}", value)
    return builder1.build(), builder2.build()


@given(facts1=fact_lists, facts2=fact_lists)
@settings(max_examples=40, deadline=None)
def test_probabilities_bounded(facts1, facts2):
    left, right = build_pair(facts1, facts2)
    result = align(left, right, ParisConfig(max_iterations=3))
    for _l, _r, probability in result.instances.items():
        assert 0.0 < probability <= 1.0
    for matrix in (result.relations12, result.relations21,
                   result.classes12, result.classes21):
        for _a, _b, probability in matrix.items():
            assert 0.0 < probability <= 1.0


@given(facts1=fact_lists, facts2=fact_lists)
@settings(max_examples=40, deadline=None)
def test_store_is_symmetric(facts1, facts2):
    left, right = build_pair(facts1, facts2)
    result = align(left, right, ParisConfig(max_iterations=3))
    for l, r, probability in result.instances.items():
        assert result.instances.equals_of_right(r)[l] == probability


@given(facts1=fact_lists, facts2=fact_lists)
@settings(max_examples=40, deadline=None)
def test_maximal_assignment_is_single_valued(facts1, facts2):
    left, right = build_pair(facts1, facts2)
    result = align(left, right, ParisConfig(max_iterations=3))
    # each left instance appears exactly once in assignment12 (dict) and
    # every assigned counterpart is an instance of the right ontology.
    for l, (r, _p) in result.assignment12.items():
        assert l in left.instances
        assert r in right.instances


@given(facts=fact_lists)
@settings(max_examples=40, deadline=None)
def test_deterministic(facts):
    left, right = build_pair(facts, facts)
    first = align(left, right, ParisConfig(max_iterations=3))
    second = align(left, right, ParisConfig(max_iterations=3))
    assert {
        (l.name, r.name, round(p, 12)) for l, r, p in first.instances.items()
    } == {(l.name, r.name, round(p, 12)) for l, r, p in second.instances.items()}


@given(
    unique_values=st.lists(
        st.sampled_from(["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]),
        min_size=2,
        max_size=6,
        unique=True,
    )
)
@settings(max_examples=40, deadline=None)
def test_renamed_copy_recovers_identity(unique_values):
    """Each instance has a unique value: the renamed copy must align to
    the identity mapping with probability approaching 1."""
    builder1 = OntologyBuilder("left")
    builder2 = OntologyBuilder("right")
    for i, value in enumerate(unique_values):
        builder1.value(f"a{i}", "Lname", value)
        builder2.value(f"b{i}", "Rname", value)
    result = align(builder1.build(), builder2.build())
    for i in range(len(unique_values)):
        counterpart, probability = result.assignment12[Resource(f"a{i}")]
        assert counterpart == Resource(f"b{i}")
        assert probability > 0.5


@given(facts1=fact_lists, facts2=fact_lists, theta=st.sampled_from([0.05, 0.1, 0.2]))
@settings(max_examples=25, deadline=None)
def test_truncation_respects_theta(facts1, facts2, theta):
    left, right = build_pair(facts1, facts2)
    result = align(left, right, ParisConfig(theta=theta, max_iterations=3))
    for _l, _r, probability in result.instances.items():
        assert probability >= theta
