"""Unit tests for the indexed ontology store (repro.rdf.ontology)."""

import pytest

from repro.rdf.ontology import Ontology
from repro.rdf.terms import Literal, Relation, Resource
from repro.rdf.triples import Triple
from repro.rdf.vocabulary import RDF_TYPE, RDFS_SUBCLASSOF


@pytest.fixture()
def onto():
    ontology = Ontology("test")
    ontology.add(Resource("Elvis"), Relation("bornIn"), Resource("Tupelo"))
    ontology.add(Resource("Elvis"), Relation("name"), Literal("Elvis Presley"))
    ontology.add(Resource("Cash"), Relation("bornIn"), Resource("Kingsland"))
    return ontology


class TestAdd:
    def test_returns_true_for_new_statement(self):
        ontology = Ontology("t")
        assert ontology.add(Resource("a"), Relation("r"), Resource("b"))

    def test_returns_false_for_duplicate(self, onto):
        assert not onto.add(Resource("Elvis"), Relation("bornIn"), Resource("Tupelo"))

    def test_materializes_inverse(self, onto):
        inverse = Relation("bornIn").inverse
        assert onto.has(Resource("Tupelo"), inverse, Resource("Elvis"))

    def test_duplicate_does_not_double_count(self, onto):
        before = onto.num_statements(Relation("bornIn"))
        onto.add(Resource("Elvis"), Relation("bornIn"), Resource("Tupelo"))
        assert onto.num_statements(Relation("bornIn")) == before

    def test_type_routed_to_schema_index(self):
        ontology = Ontology("t")
        ontology.add(Resource("Elvis"), RDF_TYPE, Resource("singer"))
        assert Resource("Elvis") in ontology.instances_of(Resource("singer"))
        # rdf:type is not a data relation
        assert RDF_TYPE not in ontology.relations()

    def test_subclass_routed_to_schema_index(self):
        ontology = Ontology("t")
        ontology.add(Resource("singer"), RDFS_SUBCLASSOF, Resource("person"))
        assert Resource("person") in ontology.superclasses_of(Resource("singer"))

    def test_inverted_type_statement(self):
        ontology = Ontology("t")
        ontology.add(Resource("singer"), RDF_TYPE.inverse, Resource("Elvis"))
        assert Resource("singer") in ontology.classes_of(Resource("Elvis"))

    def test_non_relation_predicate_rejected(self):
        ontology = Ontology("t")
        with pytest.raises(TypeError):
            ontology.add(Resource("a"), "r", Resource("b"))

    def test_subproperty_via_add_rejected(self):
        ontology = Ontology("t")
        from repro.rdf.vocabulary import RDFS_SUBPROPERTYOF
        with pytest.raises(ValueError):
            ontology.add(Resource("a"), RDFS_SUBPROPERTYOF, Resource("b"))


class TestStatementAccess:
    def test_statements_about_includes_both_directions(self, onto):
        statements = set(onto.statements_about(Resource("Elvis")))
        assert (Relation("bornIn"), Resource("Tupelo")) in statements
        assert (Relation("name"), Literal("Elvis Presley")) in statements

    def test_statements_about_literal_subject(self, onto):
        statements = set(onto.statements_about(Literal("Elvis Presley")))
        assert (Relation("name").inverse, Resource("Elvis")) in statements

    def test_statements_about_unknown_is_empty(self, onto):
        assert list(onto.statements_about(Resource("nobody"))) == []

    def test_objects(self, onto):
        assert onto.objects(Relation("bornIn"), Resource("Elvis")) == {Resource("Tupelo")}
        assert onto.objects(Relation("bornIn"), Resource("nobody")) == set()

    def test_pairs(self, onto):
        pairs = set(onto.pairs(Relation("bornIn")))
        assert pairs == {
            (Resource("Elvis"), Resource("Tupelo")),
            (Resource("Cash"), Resource("Kingsland")),
        }

    def test_relations_of(self, onto):
        assert Relation("bornIn") in onto.relations_of(Resource("Elvis"))
        assert Relation("name") in onto.relations_of(Resource("Elvis"))

    def test_triples_forward_only_by_default(self, onto):
        triples = list(onto.triples())
        assert all(not t.relation.inverted for t in triples)
        assert len(triples) == 3

    def test_triples_with_inverses(self, onto):
        assert len(list(onto.triples(include_inverses=True))) == 6

    def test_contains_triple(self, onto):
        assert Triple(Resource("Elvis"), Relation("bornIn"), Resource("Tupelo")) in onto
        assert Triple(Resource("Elvis"), Relation("bornIn"), Resource("Memphis")) not in onto
        assert "not a triple" not in onto


class TestCounts:
    def test_num_statements_counts_both_directions_separately(self, onto):
        relation = Relation("bornIn")
        assert onto.num_statements(relation) == 2
        assert onto.num_statements(relation.inverse) == 2

    def test_num_subjects_and_objects(self, onto):
        relation = Relation("bornIn")
        assert onto.num_subjects(relation) == 2
        assert onto.num_objects(relation) == 2
        assert onto.num_subjects(relation.inverse) == 2

    def test_fanout_histogram(self):
        ontology = Ontology("t")
        ontology.add(Resource("a"), Relation("r"), Resource("b"))
        ontology.add(Resource("a"), Relation("r"), Resource("c"))
        ontology.add(Resource("d"), Relation("r"), Resource("b"))
        assert ontology.fanout_histogram(Relation("r")) == {2: 1, 1: 1}

    def test_num_facts_counts_assertions_once(self, onto):
        assert onto.num_facts == 3
        assert len(onto) == 3


class TestPartition:
    def test_instances_and_literals(self, onto):
        assert Resource("Elvis") in onto.instances
        assert Resource("Tupelo") in onto.instances
        assert Literal("Elvis Presley") in onto.literals

    def test_classes_are_not_instances(self):
        ontology = Ontology("t")
        ontology.add_type(Resource("Elvis"), Resource("singer"))
        ontology.add(Resource("Elvis"), Relation("knows"), Resource("Cash"))
        assert Resource("singer") in ontology.classes
        assert Resource("singer") not in ontology.instances

    def test_class_registration_evicts_instance(self):
        # A resource first seen in data, later declared a class, ends
        # up a class only (the paper assumes a clean partition).
        ontology = Ontology("t")
        ontology.add(Resource("x"), Relation("r"), Resource("singer"))
        ontology.add_subclass(Resource("singer"), Resource("person"))
        assert Resource("singer") in ontology.classes
        assert Resource("singer") not in ontology.instances


class TestSchemaAccess:
    def test_type_statements_iteration(self):
        ontology = Ontology("t")
        ontology.add_type(Resource("a"), Resource("C"))
        ontology.add_type(Resource("b"), Resource("C"))
        assert set(ontology.type_statements()) == {
            (Resource("a"), Resource("C")),
            (Resource("b"), Resource("C")),
        }

    def test_subclass_edges_iteration(self):
        ontology = Ontology("t")
        ontology.add_subclass(Resource("C"), Resource("D"))
        assert list(ontology.subclass_edges()) == [(Resource("C"), Resource("D"))]

    def test_subproperty(self):
        ontology = Ontology("t")
        assert ontology.add_subproperty(Relation("r"), Relation("s"))
        assert not ontology.add_subproperty(Relation("r"), Relation("s"))
        assert Relation("s") in ontology.superproperties_of(Relation("r"))

    def test_classes_of(self):
        ontology = Ontology("t")
        ontology.add_type(Resource("a"), Resource("C"))
        ontology.add_type(Resource("a"), Resource("D"))
        assert ontology.classes_of(Resource("a")) == {Resource("C"), Resource("D")}

    def test_num_type_statements(self):
        ontology = Ontology("t")
        ontology.add_type(Resource("a"), Resource("C"))
        ontology.add_type(Resource("b"), Resource("C"))
        assert ontology.num_type_statements == 2


def test_requires_name():
    with pytest.raises(ValueError):
        Ontology("")


def test_repr_mentions_counts(onto):
    text = repr(onto)
    assert "test" in text
    assert "3 facts" in text


def test_update_bulk(onto):
    added = onto.update(
        [
            Triple(Resource("a"), Relation("r"), Resource("b")),
            Triple(Resource("Elvis"), Relation("bornIn"), Resource("Tupelo")),  # dup
        ]
    )
    assert added == 1
