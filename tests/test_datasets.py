"""Structural tests for the benchmark generators.

These check the *datasets* (sizes, vocabulary disjointness, gold
consistency, determinism) — alignment quality on them is covered by the
integration tests.
"""


from repro.datasets import (
    person_benchmark,
    restaurant_benchmark,
    yago_dbpedia_pair,
    yago_imdb_pair,
)
from repro.rdf.terms import Resource


def assert_disjoint_vocabulary(pair):
    left = {r.name for r in pair.ontology1.relations()}
    right = {r.name for r in pair.ontology2.relations()}
    assert not left & right
    left_instances = {i.name for i in pair.ontology1.instances}
    right_instances = {i.name for i in pair.ontology2.instances}
    assert not left_instances & right_instances
    left_classes = {c.name for c in pair.ontology1.classes}
    right_classes = {c.name for c in pair.ontology2.classes}
    assert not left_classes & right_classes


def assert_gold_instances_exist(pair):
    left_names = {i.name for i in pair.ontology1.instances}
    right_names = {i.name for i in pair.ontology2.instances}
    for left, right in pair.gold.instance_pairs:
        assert left in left_names
        assert right in right_names


class TestPersonBenchmark:
    def test_gold_size_matches_parameter(self, person_pair):
        assert person_pair.gold.num_instances == 80

    def test_paper_scale_default(self):
        pair = person_benchmark(num_persons=120, seed=1)
        assert pair.gold.num_instances == 120

    def test_four_classes_each_side(self, person_pair):
        assert len(person_pair.ontology1.classes) == 4
        assert len(person_pair.ontology2.classes) == 4

    def test_twenty_gold_relations(self, person_pair):
        assert person_pair.gold.num_relations == 20

    def test_disjoint_vocabulary(self, person_pair):
        assert_disjoint_vocabulary(person_pair)

    def test_gold_instances_exist(self, person_pair):
        assert_gold_instances_exist(person_pair)

    def test_deterministic(self):
        first = person_benchmark(num_persons=30, seed=5)
        second = person_benchmark(num_persons=30, seed=5)
        assert set(first.ontology1.triples()) == set(second.ontology1.triples())
        assert first.gold.instance_pairs == second.gold.instance_pairs

    def test_different_seeds_differ(self):
        first = person_benchmark(num_persons=30, seed=5)
        second = person_benchmark(num_persons=30, seed=6)
        assert set(first.ontology1.triples()) != set(second.ontology1.triples())


class TestRestaurantBenchmark:
    def test_gold_size(self, restaurant_pair):
        assert restaurant_pair.gold.num_instances == 112

    def test_second_ontology_larger(self, restaurant_pair):
        rest1 = [i for i in restaurant_pair.ontology1.instances]
        rest2 = [i for i in restaurant_pair.ontology2.instances]
        assert len(rest2) > len(rest1)

    def test_twelve_gold_relations(self, restaurant_pair):
        assert restaurant_pair.gold.num_relations == 12

    def test_four_classes(self, restaurant_pair):
        assert len(restaurant_pair.ontology1.classes) == 4

    def test_disjoint_vocabulary(self, restaurant_pair):
        assert_disjoint_vocabulary(restaurant_pair)

    def test_gold_instances_exist(self, restaurant_pair):
        assert_gold_instances_exist(restaurant_pair)

    def test_noise_dials(self):
        clean = restaurant_benchmark(seed=3, format_noise=0.0, content_noise=0.0,
                                     drop_fact=0.0)
        noisy = restaurant_benchmark(seed=3, format_noise=0.9, content_noise=0.0,
                                     drop_fact=0.0)
        clean_literals = {l.value for l in clean.ontology2.literals}
        noisy_literals = {l.value for l in noisy.ontology2.literals}
        assert clean_literals != noisy_literals


class TestKbPair:
    def test_structure(self, kb_pair):
        stats1 = kb_pair.ontology1
        stats2 = kb_pair.ontology2
        # YAGO side: many fine-grained classes; DBpedia side: few.
        assert len(stats1.classes) > 5 * len(stats2.classes)
        assert len(stats1.instances) > 100
        assert len(stats2.instances) > 100

    def test_partial_overlap(self, kb_pair):
        shared = kb_pair.gold.num_instances
        assert shared < len(kb_pair.ontology1.instances)
        assert shared < len(kb_pair.ontology2.instances)
        assert shared > 0

    def test_disjoint_vocabulary(self, kb_pair):
        assert_disjoint_vocabulary(kb_pair)

    def test_gold_instances_exist(self, kb_pair):
        assert_gold_instances_exist(kb_pair)

    def test_class_gold_includes_occupation_mappings(self, kb_pair):
        # y:physicist ⊆ dbp:Scientist by construction
        assert ("y:physicist", "dbp:Scientist") in kb_pair.gold.class_inclusions_12

    def test_granularity_mixing_present(self, kb_pair):
        """dbp:birthPlace points at cities AND countries."""
        from repro.rdf.terms import Relation
        targets = {obj for _s, obj in kb_pair.ontology2.pairs(Relation("dbp:birthPlace"))}
        country_classes = kb_pair.ontology2.instances_of(Resource("dbp:Country"))
        city_classes = kb_pair.ontology2.instances_of(Resource("dbp:City"))
        assert targets & country_classes
        assert targets & city_classes

    def test_deterministic(self):
        first = yago_dbpedia_pair(num_persons=50, num_works=20, seed=9)
        second = yago_dbpedia_pair(num_persons=50, num_works=20, seed=9)
        assert set(first.ontology2.triples()) == set(second.ontology2.triples())


class TestMoviePair:
    def test_structure(self, movie_pair):
        # IMDb side is bigger (obscure actors) with fewer classes.
        assert len(movie_pair.ontology2.instances) > len(movie_pair.ontology1.instances)
        assert len(movie_pair.ontology1.classes) > len(movie_pair.ontology2.classes)

    def test_disjoint_vocabulary(self, movie_pair):
        assert_disjoint_vocabulary(movie_pair)

    def test_gold_instances_exist(self, movie_pair):
        assert_gold_instances_exist(movie_pair)

    def test_variants_only_in_imdb(self):
        pair = yago_imdb_pair(num_persons=300, num_movies=300, seed=11)
        # variants exist in the world and are IMDb-exclusive
        variant_uids = [
            uid for uid in pair.mapping2 if uid not in pair.mapping1
            and uid.startswith("movie")
        ]
        assert variant_uids, "expected IMDb-only movies (incl. variants)"

    def test_documentary_subjects_bridge_populations(self, movie_pair):
        """Some famous non-movie people must be present in both KBs."""
        shared_uids = set(movie_pair.mapping1) & set(movie_pair.mapping2)
        person_uids = {uid for uid in shared_uids if uid.startswith("person")}
        assert person_uids

    def test_deterministic(self):
        first = yago_imdb_pair(num_persons=100, num_movies=60, seed=3)
        second = yago_imdb_pair(num_persons=100, num_movies=60, seed=3)
        assert first.gold.instance_pairs == second.gold.instance_pairs


class TestPersonCorruption:
    """The optional person2-style corruption knobs."""

    def test_default_is_clean(self):
        pair = person_benchmark(num_persons=30, seed=5)
        values1 = {l.value for l in pair.ontology1.literals}
        values2 = {l.value for l in pair.ontology2.literals}
        assert values1 == values2

    def test_noise_changes_values(self):
        clean = person_benchmark(num_persons=30, seed=5)
        noisy = person_benchmark(num_persons=30, seed=5,
                                 format_noise=0.5, content_noise=0.1)
        assert {l.value for l in clean.ontology2.literals} != {
            l.value for l in noisy.ontology2.literals
        }

    def test_corrupted_copy_still_aligns_reasonably(self):
        from repro import align
        from repro.evaluation.metrics import evaluate_instances
        pair = person_benchmark(num_persons=60, seed=5,
                                format_noise=0.2, content_noise=0.05)
        result = align(pair.ontology1, pair.ontology2)
        prf = evaluate_instances(result.assignment12, pair.gold)
        assert prf.f1 >= 0.8  # degraded but robust, like OAEI person2
