"""Service hardening: stalled clients, bogus staleness params, wedged stop.

Three production failure modes fixed together:

* a client that declares ``Content-Length: N`` and then stalls used to
  pin a handler thread forever on ``rfile.read`` — now the socket
  deadline answers ``408`` (stall) or ``400`` (short body) in bounded
  wall-clock time, on the primary and the router alike;
* ``?max_lag_ms=nan`` used to *silently disable* bounded staleness
  (every NaN comparison in ``_satisfies`` is False) — now NaN/inf/
  negative bounds are rejected with ``400``;
* ``ReplicaNode.stop()`` used to join its tail thread with a timeout
  and never check ``is_alive()`` — a wedged follower is now logged and
  latched into ``stats()``.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import ParisConfig
from repro.datasets.incremental import family_pair
from repro.service import AlignmentService
from repro.service.replica import ReadRouter, ReplicaNode, build_router_server
from repro.service.server import build_server


def serve(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


def shut_down(server, thread):
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def raw_request_status(address, payload: bytes, stall: bool) -> tuple:
    """Send a POST whose body is shorter than its Content-Length, then
    either stall (keep the socket open) or half-close.  Returns the
    status line and how long the server took to answer."""
    host, port = address[:2]
    declared = len(payload) + 64  # always lie: promise more than sent
    head = (
        f"POST /delta HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {declared}\r\n\r\n"
    ).encode("ascii")
    started = time.monotonic()
    with socket.create_connection((host, port), timeout=30) as sock:
        sock.sendall(head + payload)
        if not stall:
            sock.shutdown(socket.SHUT_WR)
        sock.settimeout(30)
        status = sock.makefile("rb").readline().decode("ascii", "replace")
    return status, time.monotonic() - started


class TestStalledClients:
    @pytest.fixture()
    def server(self):
        left, right = family_pair(2)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        server = build_server(service, "127.0.0.1", 0, handler_timeout=1.0)
        thread = serve(server)
        yield server
        shut_down(server, thread)

    def test_stalled_body_answers_408_in_bounded_time(self, server):
        status, elapsed = raw_request_status(server.server_address, b'{"add1": [', stall=True)
        assert " 408 " in status
        # One handler_timeout (1s) plus scheduling slack — not forever,
        # and nowhere near a default-socket-timeout scale.
        assert elapsed < 15

    def test_half_closed_body_answers_400(self, server):
        status, elapsed = raw_request_status(server.server_address, b'{"add1": [', stall=False)
        assert " 400 " in status
        assert elapsed < 15

    def test_wellformed_posts_still_work(self, server):
        from repro.service import Delta

        request = urllib.request.Request(
            "http://%s:%d/delta" % server.server_address[:2],
            data=json.dumps(Delta().to_json()).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        # The timeout machinery must not break honest uploads: the full
        # body is read and the delta applies (a no-op report).
        with urllib.request.urlopen(request, timeout=30) as response:
            report = json.load(response)
        assert report["applied_add"] == 0 and report["applied_remove"] == 0


class TestRouterHardening:
    @pytest.fixture()
    def router_server(self):
        # Validation runs before any backend is consulted, so an
        # unreachable primary and zero replicas are enough here.
        router = ReadRouter("http://127.0.0.1:9", [], retry_after=0.1)
        server = build_router_server(router, handler_timeout=1.0)
        thread = serve(server)
        yield server
        shut_down(server, thread)

    @staticmethod
    def get_status(server, path):
        url = "http://%s:%d%s" % (*server.server_address[:2], path)
        try:
            with urllib.request.urlopen(url, timeout=30) as response:
                return response.status, json.load(response)
        except urllib.error.HTTPError as error:
            return error.code, json.load(error)

    @pytest.mark.parametrize("value", ["nan", "NaN", "inf", "-inf", "-5", "-0.5"])
    def test_bogus_max_lag_ms_rejected(self, router_server, value):
        status, payload = self.get_status(router_server, f"/pair/a/b?max_lag_ms={value}")
        assert status == 400
        assert "max_lag_ms" in payload["error"]

    def test_negative_min_offset_rejected(self, router_server):
        status, payload = self.get_status(router_server, "/pair/a/b?min_offset=-1")
        assert status == 400
        assert "min_offset" in payload["error"]

    def test_valid_bounds_still_accepted(self, router_server):
        # No replica can satisfy them here; the answer must be the
        # honest 503, not a validation 400.
        status, _payload = self.get_status(router_server, "/pair/a/b?min_offset=0&max_lag_ms=5000")
        assert status == 503

    def test_stalled_write_answers_408(self, router_server):
        status, elapsed = raw_request_status(
            router_server.server_address, b'{"add1": [', stall=True
        )
        assert " 408 " in status
        assert elapsed < 15

    def test_half_closed_write_answers_400(self, router_server):
        status, elapsed = raw_request_status(
            router_server.server_address, b'{"add1": [', stall=False
        )
        assert " 400 " in status
        assert elapsed < 15


class TestWedgedFollowerStop:
    def test_stop_surfaces_wedged_tail_thread(self, tmp_path):
        left, right = family_pair(2)
        primary = AlignmentService.cold_start(left, right, ParisConfig())
        state_dir = tmp_path / "state"
        primary.snapshot(state_dir)
        replica = ReplicaNode(state_dir, batch=4)
        release = threading.Event()
        replica.poll_once = lambda: (release.wait(60), 0)[1]  # wedge the loop
        replica.start()
        time.sleep(0.05)  # let the tail thread enter the blocked poll

        replica.stop(timeout=0.2)
        assert replica.wedged
        assert replica.stats()["wedged"] is True
        # A replica server surfaces the flag to operators via /stats.
        server = build_server(None, "127.0.0.1", 0, replica=replica)
        thread = serve(server)
        try:
            url = "http://%s:%d/stats" % server.server_address[:2]
            with urllib.request.urlopen(url, timeout=30) as response:
                stats = json.load(response)
            assert stats["replication"]["wedged"] is True
        finally:
            shut_down(server, thread)

        # Once the blockage clears, a later stop() joins and unlatches.
        release.set()
        replica.stop(timeout=30)
        assert not replica.wedged
        assert replica.stats()["wedged"] is False
