"""Unit tests for functionality (Eq. 1–2 and Appendix A)."""

import pytest

from repro.core.functionality import (
    FunctionalityDefinition,
    FunctionalityOracle,
    global_functionality,
    global_inverse_functionality,
    local_functionality,
    local_inverse_functionality,
)
from repro.rdf.builder import OntologyBuilder
from repro.rdf.terms import Relation, Resource


@pytest.fixture()
def onto():
    """wasBornIn is a function; livesIn is a quasi-function."""
    return (
        OntologyBuilder("t")
        .fact("elvis", "wasBornIn", "tupelo")
        .fact("cash", "wasBornIn", "kingsland")
        .fact("dylan", "wasBornIn", "duluth")
        .fact("elvis", "livesIn", "memphis")
        .fact("cash", "livesIn", "nashville")
        .fact("cash", "livesIn", "hendersonville")
        .build()
    )


class TestLocalFunctionality:
    def test_function_is_one(self, onto):
        assert local_functionality(onto, Relation("wasBornIn"), Resource("elvis")) == 1.0

    def test_two_targets_is_half(self, onto):
        assert local_functionality(onto, Relation("livesIn"), Resource("cash")) == 0.5

    def test_no_edge_is_zero(self, onto):
        assert local_functionality(onto, Relation("livesIn"), Resource("dylan")) == 0.0

    def test_local_inverse(self, onto):
        assert (
            local_inverse_functionality(onto, Relation("wasBornIn"), Resource("tupelo"))
            == 1.0
        )


class TestHarmonicGlobal:
    def test_perfect_function(self, onto):
        # 3 subjects, 3 statements -> 1.0 (Eq. 2)
        assert global_functionality(onto, Relation("wasBornIn")) == 1.0

    def test_quasi_function(self, onto):
        # livesIn: 2 subjects, 3 statements -> 2/3
        assert global_functionality(onto, Relation("livesIn")) == pytest.approx(2 / 3)

    def test_inverse_functionality(self, onto):
        # each city lived-in once: fun^-1(livesIn) = 3 objects/3 stmts = 1
        assert global_inverse_functionality(onto, Relation("livesIn")) == 1.0

    def test_empty_relation_is_zero(self, onto):
        assert global_functionality(onto, Relation("unknown")) == 0.0


class TestAppendixAAlternatives:
    @pytest.fixture()
    def likes_dish(self):
        """Appendix A's likesDish pathology: everyone likes every dish."""
        builder = OntologyBuilder("t")
        for person in ("p1", "p2", "p3"):
            for dish in ("d1", "d2", "d3"):
                builder.fact(person, "likesDish", dish)
        return builder.build()

    def test_argument_ratio_is_fooled(self, likes_dish):
        # Appendix A: the #subjects/#objects definition wrongly assigns
        # functionality 1 to a complete bipartite relation.
        value = global_functionality(
            likes_dish, Relation("likesDish"), FunctionalityDefinition.ARGUMENT_RATIO
        )
        assert value == 1.0

    def test_harmonic_is_not_fooled(self, likes_dish):
        value = global_functionality(
            likes_dish, Relation("likesDish"), FunctionalityDefinition.HARMONIC
        )
        assert value == pytest.approx(1 / 3)

    def test_pair_ratio(self, likes_dish):
        # 9 statements / (3 subjects * 9 ordered same-source pairs) = 9/27
        value = global_functionality(
            likes_dish, Relation("likesDish"), FunctionalityDefinition.PAIR_RATIO
        )
        assert value == pytest.approx(9 / 27)

    def test_arithmetic_mean(self, onto):
        # livesIn: locals are 1 (elvis) and 1/2 (cash) -> mean 3/4
        value = global_functionality(
            onto, Relation("livesIn"), FunctionalityDefinition.ARITHMETIC_MEAN
        )
        assert value == pytest.approx(0.75)

    def test_arithmetic_above_harmonic(self, onto):
        # AM >= HM always.
        arithmetic = global_functionality(
            onto, Relation("livesIn"), FunctionalityDefinition.ARITHMETIC_MEAN
        )
        harmonic = global_functionality(
            onto, Relation("livesIn"), FunctionalityDefinition.HARMONIC
        )
        assert arithmetic >= harmonic

    def test_all_definitions_bounded(self, onto, likes_dish):
        for ontology in (onto, likes_dish):
            for relation in ontology.relations():
                for definition in FunctionalityDefinition:
                    value = global_functionality(ontology, relation, definition)
                    assert 0.0 <= value <= 1.0

    def test_all_definitions_agree_on_perfect_function(self, onto):
        for definition in FunctionalityDefinition:
            assert (
                global_functionality(onto, Relation("wasBornIn"), definition) == 1.0
            )


class TestOracle:
    def test_precomputes_all_relations(self, onto):
        oracle = FunctionalityOracle(onto)
        assert oracle.fun(Relation("wasBornIn")) == 1.0
        assert oracle.fun(Relation("livesIn")) == pytest.approx(2 / 3)

    def test_inverse_fun(self, onto):
        oracle = FunctionalityOracle(onto)
        assert oracle.inverse_fun(Relation("livesIn")) == 1.0
        assert oracle.inverse_fun(Relation("livesIn")) == oracle.fun(
            Relation("livesIn").inverse
        )

    def test_unknown_relation_computed_lazily(self, onto):
        oracle = FunctionalityOracle(onto)
        assert oracle.fun(Relation("never-seen")) == 0.0

    def test_repr(self, onto):
        assert "t" in repr(FunctionalityOracle(onto))
