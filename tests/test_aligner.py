"""End-to-end tests of the ParisAligner fixpoint driver."""

import pytest

from repro import (
    AlignmentResult,
    NormalizedIdentitySimilarity,
    OntologyBuilder,
    ParisAligner,
    ParisConfig,
    align,
)
from repro.core.functionality import FunctionalityDefinition
from repro.rdf.terms import Relation, Resource


class TestBasicAlignment:
    def test_two_person_pair(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        assert result.assignment12[Resource("p1")][0] == Resource("x9")
        assert result.assignment12[Resource("p2")][0] == Resource("x7")

    def test_relation_alignment_found(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        assert result.relations12.get(Relation("bornIn"), Relation("birthPlace")) > 0.5
        assert result.relations12.get(Relation("name"), Relation("label")) > 0.5

    def test_class_alignment_found(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        assert result.classes12.get(Resource("L_Singer"), Resource("R_Musician")) > 0.9
        assert result.classes21.get(Resource("R_Musician"), Resource("L_Singer")) > 0.9

    def test_converges(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        assert result.converged
        assert result.num_iterations <= 4

    def test_result_summary(self, tiny_pair):
        left, right = tiny_pair
        summary = align(left, right).summary()
        assert "left" in summary and "right" in summary
        assert "converged" in summary

    def test_instance_pairs_thresholded(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        assert len(result.instance_pairs(threshold=0.5)) == 2
        assert len(result.instance_pairs(threshold=1.1)) == 0

    def test_relation_pairs_are_maximal_only(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        subs = [str(sub) for sub, _sup, _score in result.relation_pairs()]
        assert len(subs) == len(set(subs))


class TestEdgeCases:
    def test_empty_ontologies(self):
        left = OntologyBuilder("left").build()
        right = OntologyBuilder("right").build()
        result = align(left, right)
        assert isinstance(result, AlignmentResult)
        assert len(result.assignment12) == 0

    def test_no_shared_literals(self):
        left = OntologyBuilder("left").value("a", "name", "Alpha").build()
        right = OntologyBuilder("right").value("x", "label", "Omega").build()
        result = align(left, right)
        assert len(result.assignment12) == 0

    def test_same_name_rejected(self):
        onto = OntologyBuilder("same").build()
        other = OntologyBuilder("same").build()
        with pytest.raises(ValueError):
            ParisAligner(onto, other)

    def test_one_empty_side(self, tiny_pair):
        left, _right = tiny_pair
        result = align(left, OntologyBuilder("empty").build())
        assert len(result.assignment12) == 0

    def test_literal_heavy_asymmetric_sizes(self):
        left = OntologyBuilder("left").value("a", "n", "shared").build()
        builder = OntologyBuilder("right")
        for i in range(20):
            builder.value(f"x{i}", "m", f"val{i}")
        builder.value("x20", "m", "shared")
        result = align(left, builder.build())
        assert result.assignment12[Resource("a")][0] == Resource("x20")


class TestConfigOptions:
    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            ParisConfig(theta=0.0)
        with pytest.raises(ValueError):
            ParisConfig(theta=1.0)

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            ParisConfig(max_iterations=0)

    def test_invalid_dampening(self):
        with pytest.raises(ValueError):
            ParisConfig(dampening=1.0)

    def test_invalid_functionality(self):
        with pytest.raises(TypeError):
            ParisConfig(functionality="harmonic")

    def test_snapshots_disabled(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right, ParisConfig(keep_snapshots=False))
        assert result.iterations == []
        assert len(result.assignment12) == 2

    def test_max_iterations_respected(self, tiny_pair):
        left, right = tiny_pair
        result = align(
            left, right, ParisConfig(max_iterations=1, keep_snapshots=True)
        )
        assert result.num_iterations == 1
        assert not result.converged

    def test_dampening_still_aligns(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right, ParisConfig(dampening=0.5, max_iterations=6))
        assert result.assignment12[Resource("p1")][0] == Resource("x9")

    def test_alternative_functionality_definition(self, tiny_pair):
        left, right = tiny_pair
        config = ParisConfig(functionality=FunctionalityDefinition.ARITHMETIC_MEAN)
        result = align(left, right, config)
        assert result.assignment12[Resource("p1")][0] == Resource("x9")

    def test_custom_literal_similarity(self):
        left = OntologyBuilder("left").value("a", "phone", "213/467-1108").build()
        right = OntologyBuilder("right").value("x", "tel", "213-467-1108").build()
        strict = align(left, right)
        assert len(strict.assignment12) == 0
        relaxed = align(
            left,
            right,
            ParisConfig(literal_similarity=NormalizedIdentitySimilarity()),
        )
        assert relaxed.assignment12[Resource("a")][0] == Resource("x")

    def test_negative_evidence_kills_contradicted_match(self):
        left = (
            OntologyBuilder("left")
            .value("a", "name", "Kim")
            .value("a", "born", "1950-01-01")
            .build()
        )
        right = (
            OntologyBuilder("right")
            .value("x", "label", "Kim")
            .value("x", "birth", "1970-05-05")
            .value("y", "label", "Lee")
            .value("y", "birth", "1950-01-01")
            .build()
        )
        positive_only = align(left, right, ParisConfig(max_iterations=5))
        with_negative = align(
            left, right, ParisConfig(max_iterations=5, use_negative_evidence=True)
        )
        score_positive = with_negative.instances.get(Resource("a"), Resource("x"))
        assert score_positive <= positive_only.instances.get(Resource("a"), Resource("x"))

    def test_unrestricted_assignment_mode(self, tiny_pair):
        left, right = tiny_pair
        result = align(
            left, right, ParisConfig(restrict_to_maximal_assignment=False)
        )
        assert result.assignment12[Resource("p1")][0] == Resource("x9")


class TestDeterminism:
    def test_same_inputs_same_outputs(self, tiny_pair):
        left, right = tiny_pair
        first = align(left, right)
        second = align(left, right)
        assert {
            (l.name, r.name, round(p, 12)) for l, (r, p) in first.assignment12.items()
        } == {
            (l.name, r.name, round(p, 12)) for l, (r, p) in second.assignment12.items()
        }
        assert set(
            (str(a), str(b), round(p, 12)) for a, b, p in first.relations12.items()
        ) == set(
            (str(a), str(b), round(p, 12)) for a, b, p in second.relations12.items()
        )


class TestSnapshots:
    def test_snapshot_contents(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        assert result.iterations[0].index == 1
        assert result.iterations[0].change_fraction is None
        for snapshot in result.iterations[1:]:
            assert snapshot.change_fraction is not None
        for snapshot in result.iterations:
            assert snapshot.duration_seconds >= 0
            assert snapshot.num_equivalences >= 0

    def test_capture_reconstructs_old_behaviour_exactly(self):
        """Equality against the old full-copy behaviour: a chain built
        from known full assignments must hand back exactly those
        assignments through the reconstruction properties."""
        from repro.core.matrix import SubsumptionMatrix
        from repro.core.result import IterationSnapshot

        a, b, c = Resource("a"), Resource("b"), Resource("c")
        x, y = Resource("x"), Resource("y")
        passes = [
            ({a: (x, 0.5)}, {x: (a, 0.5)}),
            ({a: (y, 0.8), b: (x, 0.4)}, {x: (b, 0.4), y: (a, 0.8)}),
            ({b: (x, 0.4), c: (y, 0.9)}, {x: (b, 0.4), y: (c, 0.9)}),  # a dropped
        ]
        snapshots = []
        previous12, previous21 = {}, {}
        for index, (assignment12, assignment21) in enumerate(passes, start=1):
            snapshots.append(
                IterationSnapshot.capture(
                    index=index,
                    duration_seconds=0.0,
                    change_fraction=None,
                    num_equivalences=len(assignment12),
                    assignment12=assignment12,
                    assignment21=assignment21,
                    relations12=SubsumptionMatrix(),
                    relations21=SubsumptionMatrix(),
                    previous=snapshots[-1] if snapshots else None,
                    previous12=previous12,
                    previous21=previous21,
                )
            )
            previous12, previous21 = assignment12, assignment21
        for snapshot, (assignment12, assignment21) in zip(snapshots, passes):
            assert snapshot.assignment12 == assignment12
            assert snapshot.assignment21 == assignment21
        # The storage really is the delta, not a copy: the unchanged
        # entry (b → x) of pass 3 is not in its delta.
        assert b not in snapshots[2].assignment12_delta
        assert snapshots[2].assignment12_delta[a] is None  # drop recorded

    def test_capture_from_nonempty_base(self):
        """A warm chain starts from the pre-delta assignment: the head
        carries it as base and reconstruction includes it."""
        from repro.core.matrix import SubsumptionMatrix
        from repro.core.result import IterationSnapshot

        base12 = {Resource("a"): (Resource("x"), 0.7)}
        base21 = {Resource("x"): (Resource("a"), 0.7)}
        current12 = {**base12, Resource("b"): (Resource("y"), 0.6)}
        current21 = {**base21, Resource("y"): (Resource("b"), 0.6)}
        head = IterationSnapshot.capture(
            index=1,
            duration_seconds=0.0,
            change_fraction=None,
            num_equivalences=2,
            assignment12=current12,
            assignment21=current21,
            relations12=SubsumptionMatrix(),
            relations21=SubsumptionMatrix(),
            previous=None,
            previous12=base12,
            previous21=base21,
        )
        assert head.assignment12 == current12
        assert head.assignment21 == current21
        # Only the new entry is in the delta; the base entry is not.
        assert list(head.assignment12_delta) == [Resource("b")]

    def test_cold_run_snapshot_chain_is_consistent(self, tiny_pair):
        """Reconstruction agrees with everything the loop computed from
        the live assignments: the recorded change fractions and the
        final result's assignments."""
        from repro.core.store import EquivalenceStore

        left, right = tiny_pair
        result = align(left, right)
        assert len(result.iterations) >= 2
        assert result.iterations[-1].assignment12 == result.assignment12
        assert result.iterations[-1].assignment21 == result.assignment21
        for earlier, later in zip(result.iterations, result.iterations[1:]):
            assert later.change_fraction == pytest.approx(
                EquivalenceStore.assignment_change(
                    earlier.assignment12, later.assignment12
                )
            )

    def test_theta_invariance_of_final_assignment(self, tiny_pair):
        """Section 6.3: the choice of θ does not affect the result."""
        left, right = tiny_pair
        assignments = []
        for theta in (0.01, 0.05, 0.1, 0.2):
            result = align(left, right, ParisConfig(theta=theta))
            assignments.append(
                {(l.name, r.name) for l, (r, _p) in result.assignment12.items()}
            )
        assert all(a == assignments[0] for a in assignments)
