"""End-to-end tests of the ParisAligner fixpoint driver."""

import pytest

from repro import (
    AlignmentResult,
    NormalizedIdentitySimilarity,
    OntologyBuilder,
    ParisAligner,
    ParisConfig,
    align,
)
from repro.core.functionality import FunctionalityDefinition
from repro.rdf.terms import Relation, Resource


class TestBasicAlignment:
    def test_two_person_pair(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        assert result.assignment12[Resource("p1")][0] == Resource("x9")
        assert result.assignment12[Resource("p2")][0] == Resource("x7")

    def test_relation_alignment_found(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        assert result.relations12.get(Relation("bornIn"), Relation("birthPlace")) > 0.5
        assert result.relations12.get(Relation("name"), Relation("label")) > 0.5

    def test_class_alignment_found(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        assert result.classes12.get(Resource("L_Singer"), Resource("R_Musician")) > 0.9
        assert result.classes21.get(Resource("R_Musician"), Resource("L_Singer")) > 0.9

    def test_converges(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        assert result.converged
        assert result.num_iterations <= 4

    def test_result_summary(self, tiny_pair):
        left, right = tiny_pair
        summary = align(left, right).summary()
        assert "left" in summary and "right" in summary
        assert "converged" in summary

    def test_instance_pairs_thresholded(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        assert len(result.instance_pairs(threshold=0.5)) == 2
        assert len(result.instance_pairs(threshold=1.1)) == 0

    def test_relation_pairs_are_maximal_only(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        subs = [str(sub) for sub, _sup, _score in result.relation_pairs()]
        assert len(subs) == len(set(subs))


class TestEdgeCases:
    def test_empty_ontologies(self):
        left = OntologyBuilder("left").build()
        right = OntologyBuilder("right").build()
        result = align(left, right)
        assert isinstance(result, AlignmentResult)
        assert len(result.assignment12) == 0

    def test_no_shared_literals(self):
        left = OntologyBuilder("left").value("a", "name", "Alpha").build()
        right = OntologyBuilder("right").value("x", "label", "Omega").build()
        result = align(left, right)
        assert len(result.assignment12) == 0

    def test_same_name_rejected(self):
        onto = OntologyBuilder("same").build()
        other = OntologyBuilder("same").build()
        with pytest.raises(ValueError):
            ParisAligner(onto, other)

    def test_one_empty_side(self, tiny_pair):
        left, _right = tiny_pair
        result = align(left, OntologyBuilder("empty").build())
        assert len(result.assignment12) == 0

    def test_literal_heavy_asymmetric_sizes(self):
        left = OntologyBuilder("left").value("a", "n", "shared").build()
        builder = OntologyBuilder("right")
        for i in range(20):
            builder.value(f"x{i}", "m", f"val{i}")
        builder.value("x20", "m", "shared")
        result = align(left, builder.build())
        assert result.assignment12[Resource("a")][0] == Resource("x20")


class TestConfigOptions:
    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            ParisConfig(theta=0.0)
        with pytest.raises(ValueError):
            ParisConfig(theta=1.0)

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            ParisConfig(max_iterations=0)

    def test_invalid_dampening(self):
        with pytest.raises(ValueError):
            ParisConfig(dampening=1.0)

    def test_invalid_functionality(self):
        with pytest.raises(TypeError):
            ParisConfig(functionality="harmonic")

    def test_snapshots_disabled(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right, ParisConfig(keep_snapshots=False))
        assert result.iterations == []
        assert len(result.assignment12) == 2

    def test_max_iterations_respected(self, tiny_pair):
        left, right = tiny_pair
        result = align(
            left, right, ParisConfig(max_iterations=1, keep_snapshots=True)
        )
        assert result.num_iterations == 1
        assert not result.converged

    def test_dampening_still_aligns(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right, ParisConfig(dampening=0.5, max_iterations=6))
        assert result.assignment12[Resource("p1")][0] == Resource("x9")

    def test_alternative_functionality_definition(self, tiny_pair):
        left, right = tiny_pair
        config = ParisConfig(functionality=FunctionalityDefinition.ARITHMETIC_MEAN)
        result = align(left, right, config)
        assert result.assignment12[Resource("p1")][0] == Resource("x9")

    def test_custom_literal_similarity(self):
        left = OntologyBuilder("left").value("a", "phone", "213/467-1108").build()
        right = OntologyBuilder("right").value("x", "tel", "213-467-1108").build()
        strict = align(left, right)
        assert len(strict.assignment12) == 0
        relaxed = align(
            left,
            right,
            ParisConfig(literal_similarity=NormalizedIdentitySimilarity()),
        )
        assert relaxed.assignment12[Resource("a")][0] == Resource("x")

    def test_negative_evidence_kills_contradicted_match(self):
        left = (
            OntologyBuilder("left")
            .value("a", "name", "Kim")
            .value("a", "born", "1950-01-01")
            .build()
        )
        right = (
            OntologyBuilder("right")
            .value("x", "label", "Kim")
            .value("x", "birth", "1970-05-05")
            .value("y", "label", "Lee")
            .value("y", "birth", "1950-01-01")
            .build()
        )
        positive_only = align(left, right, ParisConfig(max_iterations=5))
        with_negative = align(
            left, right, ParisConfig(max_iterations=5, use_negative_evidence=True)
        )
        score_positive = with_negative.instances.get(Resource("a"), Resource("x"))
        assert score_positive <= positive_only.instances.get(Resource("a"), Resource("x"))

    def test_unrestricted_assignment_mode(self, tiny_pair):
        left, right = tiny_pair
        result = align(
            left, right, ParisConfig(restrict_to_maximal_assignment=False)
        )
        assert result.assignment12[Resource("p1")][0] == Resource("x9")


class TestDeterminism:
    def test_same_inputs_same_outputs(self, tiny_pair):
        left, right = tiny_pair
        first = align(left, right)
        second = align(left, right)
        assert {
            (l.name, r.name, round(p, 12)) for l, (r, p) in first.assignment12.items()
        } == {
            (l.name, r.name, round(p, 12)) for l, (r, p) in second.assignment12.items()
        }
        assert set(
            (str(a), str(b), round(p, 12)) for a, b, p in first.relations12.items()
        ) == set(
            (str(a), str(b), round(p, 12)) for a, b, p in second.relations12.items()
        )


class TestSnapshots:
    def test_snapshot_contents(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        assert result.iterations[0].index == 1
        assert result.iterations[0].change_fraction is None
        for snapshot in result.iterations[1:]:
            assert snapshot.change_fraction is not None
        for snapshot in result.iterations:
            assert snapshot.duration_seconds >= 0
            assert snapshot.num_equivalences >= 0

    def test_theta_invariance_of_final_assignment(self, tiny_pair):
        """Section 6.3: the choice of θ does not affect the result."""
        left, right = tiny_pair
        assignments = []
        for theta in (0.01, 0.05, 0.1, 0.2):
            result = align(left, right, ParisConfig(theta=theta))
            assignments.append(
                {(l.name, r.name) for l, (r, _p) in result.assignment12.items()}
            )
        assert all(a == assignments[0] for a in assignments)
