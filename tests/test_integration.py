"""Integration tests: full PARIS runs on the synthetic benchmarks.

These pin the *shapes* of the paper's results (who wins, orderings,
directions of asymmetry) rather than exact figures — the assertions use
generous bands so that dataset-seed changes don't cause flakiness while
genuine regressions still fail.
"""


from repro import ParisConfig, align
from repro.baselines import align_by_labels
from repro.datasets.kb import KB_EXCLUDED_CLASSES
from repro.evaluation.metrics import (
    class_threshold_sweep,
    evaluate_classes,
    evaluate_instances,
    evaluate_relations,
)
from repro.rdf import ntriples


class TestPersonIntegration:
    """Table 1, person block: near-perfect everything."""

    def test_instances_perfect(self, person_pair, person_result):
        prf = evaluate_instances(person_result.assignment12, person_pair.gold)
        assert prf.precision >= 0.99
        assert prf.recall >= 0.99

    def test_relations_perfect(self, person_pair, person_result):
        prf = evaluate_relations(person_result.relation_pairs(), person_pair.gold)
        assert prf.precision == 1.0
        assert prf.recall == 1.0

    def test_classes_perfect(self, person_pair, person_result):
        prf = evaluate_classes(
            person_result.class_pairs(threshold=0.4), person_pair.gold
        )
        assert prf.precision == 1.0
        assert prf.true_positives >= 4

    def test_converges_quickly(self, person_result):
        assert person_result.converged
        assert person_result.num_iterations <= 4


class TestRestaurantIntegration:
    """Table 1, restaurant block: strong but imperfect instances."""

    def test_instance_band(self, restaurant_pair, restaurant_result):
        prf = evaluate_instances(restaurant_result.assignment12, restaurant_pair.gold)
        assert 0.85 <= prf.precision <= 1.0
        assert 0.80 <= prf.recall <= 0.97
        assert prf.f1 >= 0.85

    def test_worse_than_person(self, person_pair, person_result,
                               restaurant_pair, restaurant_result):
        person_prf = evaluate_instances(person_result.assignment12, person_pair.gold)
        restaurant_prf = evaluate_instances(
            restaurant_result.assignment12, restaurant_pair.gold
        )
        assert restaurant_prf.f1 < person_prf.f1

    def test_relations_and_classes_clean(self, restaurant_pair, restaurant_result):
        relations = evaluate_relations(
            restaurant_result.relation_pairs(), restaurant_pair.gold
        )
        assert relations.precision == 1.0
        classes = evaluate_classes(
            restaurant_result.class_pairs(threshold=0.4), restaurant_pair.gold
        )
        assert classes.precision == 1.0

    def test_theta_invariance(self, restaurant_pair):
        """Section 6.3: final assignments do not depend on θ."""
        baselines = None
        for theta in (0.05, 0.1, 0.2):
            result = align(
                restaurant_pair.ontology1,
                restaurant_pair.ontology2,
                ParisConfig(theta=theta),
            )
            pairs = {(l.name, r.name) for l, (r, _p) in result.assignment12.items()}
            if baselines is None:
                baselines = pairs
            else:
                overlap = len(baselines & pairs) / max(1, len(baselines | pairs))
                assert overlap > 0.95


class TestKbIntegration:
    """Tables 3–4 and Figures 1–2 shapes on the KB pair."""

    def test_instance_band(self, kb_pair, kb_result):
        prf = evaluate_instances(kb_result.assignment12, kb_pair.gold)
        assert prf.precision >= 0.80
        assert prf.recall >= 0.60

    def test_recall_improves_over_iterations(self, kb_pair, kb_result):
        recalls = [
            evaluate_instances(snapshot.assignment12, kb_pair.gold).recall
            for snapshot in kb_result.iterations
        ]
        assert recalls[-1] > recalls[0]

    def test_relation_precision_high(self, kb_pair, kb_result):
        for reverse in (False, True):
            prf = evaluate_relations(
                kb_result.relation_pairs(reverse=reverse), kb_pair.gold, reverse=reverse
            )
            assert prf.precision >= 0.85

    def test_table4_style_alignments_found(self, kb_result):
        """The qualitative Table-4 alignments: inverse + split relations."""
        from repro.rdf.terms import Relation
        rel12 = kb_result.relations12
        assert rel12.get(Relation("y:actedIn"), Relation("dbp:starring").inverse) > 0.1
        assert rel12.get(Relation("y:hasChild"), Relation("dbp:parent").inverse) > 0.1
        assert rel12.get(Relation("y:created"), Relation("dbp:author").inverse) > 0.05
        # the weak-but-real correlation alignment
        nationality = rel12.get(Relation("y:isCitizenOf"), Relation("dbp:nationality"))
        birthplace = rel12.get(Relation("y:isCitizenOf"), Relation("dbp:birthPlace"))
        assert nationality > birthplace > 0.0

    def test_figure1_precision_rises_with_threshold(self, kb_pair, kb_result):
        points = class_threshold_sweep(
            kb_result.classes12, kb_pair.gold, exclude=KB_EXCLUDED_CLASSES
        )
        assert points[-1].precision >= points[0].precision
        assert points[-1].precision >= 0.9

    def test_figure2_counts_fall_with_threshold(self, kb_pair, kb_result):
        points = class_threshold_sweep(
            kb_result.classes12, kb_pair.gold, exclude=KB_EXCLUDED_CLASSES
        )
        counts = [p.num_classes for p in points]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] > counts[-1]


class TestMovieIntegration:
    """Table 5 shapes on the movie pair."""

    def test_instance_band(self, movie_pair, movie_result):
        prf = evaluate_instances(movie_result.assignment12, movie_pair.gold)
        assert prf.precision >= 0.85
        assert prf.recall >= 0.80

    def test_f1_improves_over_iterations(self, movie_pair, movie_result):
        f1s = [
            evaluate_instances(snapshot.assignment12, movie_pair.gold).f1
            for snapshot in movie_result.iterations
        ]
        assert f1s[-1] > f1s[0]

    def test_paris_beats_label_baseline(self, movie_pair, movie_result):
        """Section 6.4: PARIS is a considerable improvement over the
        rdfs:label matcher, whose recall is its weakness."""
        baseline = align_by_labels(movie_pair.ontology1, movie_pair.ontology2)
        baseline_prf = evaluate_instances(baseline, movie_pair.gold)
        paris_prf = evaluate_instances(movie_result.assignment12, movie_pair.gold)
        assert paris_prf.f1 > baseline_prf.f1
        assert paris_prf.recall > baseline_prf.recall
        assert baseline_prf.precision >= 0.9  # baseline is precise but shallow

    def test_class_direction_asymmetry(self, movie_pair, movie_result):
        """One direction has few precise mappings, the other many weak
        ones (the famous-people bias of Section 6.4)."""
        weak = movie_result.class_pairs(0.0)
        strong = movie_result.class_pairs(0.0, reverse=True)
        weak_prf = evaluate_classes(weak, movie_pair.gold)
        strong_prf = evaluate_classes(strong, movie_pair.gold, reverse=True)
        assert len(weak) > len(strong)
        assert strong_prf.precision > weak_prf.precision


class TestRoundTripIntegration:
    def test_serialized_benchmark_realigns(self, person_pair, tmp_path):
        """Ontologies survive an N-Triples round trip and still align."""
        path1 = tmp_path / "o1.nt"
        path2 = tmp_path / "o2.nt"
        ntriples.write_ntriples(person_pair.ontology1, path1)
        ntriples.write_ntriples(person_pair.ontology2, path2)
        onto1 = ntriples.read_ntriples(path1, name="p1")
        onto2 = ntriples.read_ntriples(path2, name="p2")
        result = align(onto1, onto2)
        prf = evaluate_instances(result.assignment12, person_pair.gold)
        assert prf.precision >= 0.99
        assert prf.recall >= 0.99
