"""Unit tests for the incremental alignment service stack.

Covers the delta layer bottom-up: ontology retraction with index
cleanup, literal-index and functionality invalidation, the delta JSON
codec, versioned state snapshots, the service engine, and the HTTP
front-end (exercised in-process over an ephemeral port).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import OntologyBuilder, ParisConfig, align
from repro.core.functionality import FunctionalityOracle
from repro.core.literal_index import LiteralIndex
from repro.datasets.incremental import family_addition, family_pair
from repro.literals import IdentitySimilarity
from repro.rdf.ontology import Ontology
from repro.rdf.terms import Literal, Relation, Resource
from repro.rdf.triples import Triple
from repro.service import (
    AlignmentService,
    AlignmentState,
    Delta,
    apply_delta,
    latest_version,
    load_state,
    save_state,
)
from repro.service.delta import triple_from_json, triple_to_json
from repro.service.server import build_server


class TestOntologyRemove:
    @pytest.fixture()
    def ontology(self):
        return (
            OntologyBuilder("o")
            .value("e1", "name", "Elvis")
            .fact("e1", "bornIn", "Tupelo")
            .type("e1", "Singer")
            .build()
        )

    def test_remove_data_statement(self, ontology):
        assert ontology.remove(Resource("e1"), Relation("bornIn"), Resource("Tupelo"))
        assert not ontology.has(Resource("e1"), Relation("bornIn"), Resource("Tupelo"))
        assert not ontology.has(Resource("Tupelo"), Relation("bornIn").inverse, Resource("e1"))
        assert ontology.num_statements(Relation("bornIn")) == 0
        # Tupelo had no other statements: gone from the instance set.
        assert Resource("Tupelo") not in ontology.instances
        assert Resource("e1") in ontology.instances

    def test_remove_absent_statement_is_noop(self, ontology):
        assert not ontology.remove(Resource("e1"), Relation("diedIn"), Resource("Memphis"))
        assert ontology.num_facts == 2

    def test_remove_literal_statement_cleans_literal(self, ontology):
        assert ontology.remove(Resource("e1"), Relation("name"), Literal("Elvis"))
        assert Literal("Elvis") not in ontology.literals

    def test_literal_with_other_uses_survives(self, ontology):
        ontology.add(Resource("e2"), Relation("name"), Literal("Elvis"))
        ontology.remove(Resource("e1"), Relation("name"), Literal("Elvis"))
        assert Literal("Elvis") in ontology.literals

    def test_remove_type(self, ontology):
        assert ontology.remove_type(Resource("e1"), Resource("Singer"))
        assert not ontology.classes_of(Resource("e1"))
        # e1 keeps its data statements, so it stays an instance.
        assert Resource("e1") in ontology.instances

    def test_instance_with_only_type_survives_until_type_removed(self):
        ontology = Ontology("o")
        ontology.add_type(Resource("x"), Resource("C"))
        assert Resource("x") in ontology.instances
        assert ontology.remove_type(Resource("x"), Resource("C"))
        assert Resource("x") not in ontology.instances

    def test_remove_via_inverse_relation(self, ontology):
        assert ontology.remove(
            Resource("Tupelo"), Relation("bornIn").inverse, Resource("e1")
        )
        assert ontology.num_statements(Relation("bornIn")) == 0

    def test_remove_subclass_and_subproperty(self):
        ontology = Ontology("o")
        ontology.add_subclass(Resource("A"), Resource("B"))
        ontology.add_subproperty(Relation("r"), Relation("s"))
        assert ontology.remove_subclass(Resource("A"), Resource("B"))
        assert not ontology.remove_subclass(Resource("A"), Resource("B"))
        assert ontology.remove_subproperty(Relation("r"), Relation("s"))
        assert not list(ontology.subclass_edges())
        assert not list(ontology.subproperty_edges())

    def test_add_after_remove_round_trips(self, ontology):
        triple = Triple(Resource("e1"), Relation("bornIn"), Resource("Tupelo"))
        assert ontology.remove_triple(triple)
        assert ontology.add_triple(triple)
        assert ontology.has(triple.subject, triple.relation, triple.object)


class TestInvalidation:
    def test_functionality_invalidate_reports_changes(self):
        ontology = OntologyBuilder("o").fact("a", "r", "b").build()
        oracle = FunctionalityOracle(ontology)
        assert oracle.fun(Relation("r")) == 1.0
        ontology.add(Resource("a"), Relation("r"), Resource("c"))
        changes = oracle.invalidate([Relation("r")])
        assert changes[Relation("r")] == (1.0, 0.5)
        assert oracle.fun(Relation("r")) == 0.5

    def test_literal_index_add_and_discard(self):
        ontology = OntologyBuilder("o").value("e", "name", "Anna").build()
        index = LiteralIndex(ontology, IdentitySimilarity())
        assert index.candidates(Literal("Bea")) == ()
        assert index.add(Literal("Bea"))
        assert index.candidates(Literal("Bea")) == ((Literal("Bea"), 1.0),)
        assert index.discard(Literal("Bea"))
        assert index.candidates(Literal("Bea")) == ()
        assert not index.discard(Literal("Bea"))
        assert index.bucket_members("Anna") == {Literal("Anna")}


class TestDeltaCodec:
    def test_triple_round_trip(self):
        """The wire form round-trips the *canonical* statement (the
        codec orients along the forward relation; both orientations
        assert the same fact)."""
        triples = [
            Triple(Resource("a"), Relation("r"), Resource("b")),
            Triple(Resource("a"), Relation("r").inverse, Resource("b")),
            Triple(Resource("a"), Relation("name"), Literal("Anna", "string")),
        ]
        for triple in triples:
            assert triple_from_json(triple_to_json(triple)) == triple.canonical

    def test_delta_round_trip(self):
        add1, add2 = family_addition(3, 1)
        delta = Delta(add1=tuple(add1), add2=tuple(add2), remove1=(add1[0],))
        decoded = Delta.from_json(delta.to_json())
        assert decoded == delta
        assert decoded.size == delta.size

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {"middle": {}},
            {"left": []},
            {"left": {"patch": []}},
            {"left": {"add": [{"subject": "a"}]}},
            {"left": {"add": [{"subject": "a", "relation": "r", "object": "b",
                               "object_type": "uri"}]}},
        ],
    )
    def test_bad_payloads_rejected(self, payload):
        with pytest.raises(ValueError):
            Delta.from_json(payload)

    def test_delta_validation_is_all_or_nothing(self):
        """A rejected batch must not half-apply (the live service would
        otherwise serve scores violating the cold-equality guarantee)."""
        from repro.rdf.vocabulary import RDFS_SUBPROPERTYOF

        left, right = family_pair(2)
        facts_before = left.num_facts
        add1, _add2 = family_addition(2, 1)
        bad = Triple(Resource("a"), RDFS_SUBPROPERTYOF, Resource("b"))
        with pytest.raises(ValueError):
            apply_delta(left, right, Delta(add1=tuple(add1) + (bad,)))
        assert left.num_facts == facts_before  # nothing applied

    def test_schema_statement_with_literal_rejected(self):
        from repro.rdf.vocabulary import RDF_TYPE

        left, right = family_pair(2)
        bad = Triple(Resource("a"), RDF_TYPE, Literal("not-a-class"))
        with pytest.raises(ValueError):
            apply_delta(left, right, Delta(add2=(bad,)))

    def test_triple_from_json_non_string_fields(self):
        with pytest.raises(ValueError):
            triple_from_json({"subject": None, "relation": "r", "object": "b"})
        with pytest.raises(ValueError):
            triple_from_json({"subject": "a", "relation": "r", "object": None,
                              "object_type": "literal"})

    def test_inverse_oriented_literal_subject_triple(self):
        """An inverse-oriented statement with a literal subject is the
        same assertion as its canonical form and must invalidate the
        literal index like one (Triple docs allow literal subjects)."""
        left, right = family_pair(2)
        inverted = Triple(
            Literal("Fresh Label"), Relation("name").inverse, Resource("p0a")
        )
        effect = apply_delta(left, right, Delta(add1=(inverted,)))
        assert effect.applied_add == 1
        assert Literal("Fresh Label") in effect.added_literals1
        assert (Relation("name"), Resource("p0a"), Literal("Fresh Label")) in (
            effect.statements1
        )
        assert left.has(Resource("p0a"), Relation("name"), Literal("Fresh Label"))
        # The codec canonicalizes instead of crashing on the literal subject.
        encoded = triple_to_json(inverted)
        assert encoded["subject"] == "p0a"
        assert triple_from_json(encoded) == inverted.canonical

    def test_apply_delta_skips_noops_and_tracks_effect(self):
        left, right = family_pair(2)
        add1, add2 = family_addition(2, 1)
        delta = Delta(
            add1=tuple(add1) + tuple(add1[:1]),  # duplicate add is a no-op
            add2=tuple(add2),
            remove1=(Triple(Resource("nobody"), Relation("name"), Literal("x")),),
        )
        effect = apply_delta(left, right, delta)
        assert effect.applied_add == len(add1) + len(add2)
        assert effect.applied_remove == 0
        assert Relation("name") in effect.touched_relations1
        assert Literal("Person 2 Alpha") in effect.added_literals1
        assert Resource("p2a") in effect.touched_instances1


class TestStateStore:
    def test_save_load_round_trip(self, tmp_path):
        left, right = family_pair(4)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        path = save_state(service.state, tmp_path)
        assert path.exists()
        assert latest_version(tmp_path) == 0
        loaded = load_state(tmp_path)
        assert isinstance(loaded, AlignmentState)
        assert loaded.version == 0
        assert loaded.store.max_difference(service.state.store) == 0.0
        assert loaded.ontology1.num_facts == left.num_facts

    def test_versioned_snapshots(self, tmp_path):
        left, right = family_pair(4)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        service.snapshot(tmp_path)
        add1, add2 = family_addition(4, 1)
        service.apply_delta(Delta(add1=tuple(add1), add2=tuple(add2)))
        service.snapshot(tmp_path)
        assert latest_version(tmp_path) == 1
        old = load_state(tmp_path, version=0)
        new = load_state(tmp_path)
        assert old.version == 0 and new.version == 1
        assert new.ontology1.num_facts > old.ontology1.num_facts

    def test_resumed_state_keeps_serving_deltas(self, tmp_path):
        left, right = family_pair(4)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        service.snapshot(tmp_path)
        resumed = AlignmentService.from_state(load_state(tmp_path))
        add1, add2 = family_addition(4, 1)
        report = resumed.apply_delta(Delta(add1=tuple(add1), add2=tuple(add2)))
        assert report.converged and report.version == 1
        assert resumed.pair("p4a", "q4a")["probability"] > 0.9

    def test_resnapshot_same_version_is_atomic_replace(self, tmp_path):
        """The shutdown snapshot re-saves the current version over an
        existing file; it must go through write-then-rename so a crash
        cannot truncate a published snapshot."""
        left, right = family_pair(3)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        first = service.snapshot(tmp_path)
        second = service.snapshot(tmp_path)  # same version, overwrite
        assert first == second
        assert load_state(tmp_path).version == 0
        assert not list(tmp_path.glob("*.tmp"))  # temp files cleaned up

    def test_load_missing_state_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state(tmp_path)

    def test_malformed_latest_marker_falls_back_to_scan(self, tmp_path):
        left, right = family_pair(3)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        service.snapshot(tmp_path)
        # Simulate a crash that truncated the marker: resume must not brick.
        (tmp_path / "LATEST").write_text("")
        assert latest_version(tmp_path) == 0
        assert load_state(tmp_path).version == 0


class TestSnapshotResumeAfterOverlayWarmPass:
    """Restart mid-stream of deltas: a snapshot taken after overlay
    warm passes folded rows into the store in place must resume to a
    process that serves exactly what a cold realign of the final corpus
    computes."""

    def test_restart_mid_stream_matches_cold_realign(self, tmp_path):
        left, right = family_pair(8)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        # Two overlay-store warm passes land before the restart...
        for step in range(2):
            add1, add2 = family_addition(8 + step, 1)
            report = service.apply_delta(Delta(add1=tuple(add1), add2=tuple(add2)))
            assert report.converged
            assert report.pairs_touched > 0
        service.snapshot(tmp_path)
        # ...the process restarts from the snapshot...
        resumed = AlignmentService.from_state(load_state(tmp_path))
        # ...and the rest of the stream lands on the resumed process.
        for step in range(2, 4):
            add1, add2 = family_addition(8 + step, 1)
            report = resumed.apply_delta(Delta(add1=tuple(add1), add2=tuple(add2)))
            assert report.converged
        reference = align(*family_pair(12), ParisConfig(score_stationarity=True))
        assert resumed.state.store.max_difference(reference.instances) <= 1e-9
        for left_res, (right_res, probability) in reference.assignment12.items():
            payload = resumed.pair(left_res.name, right_res.name)
            assert payload["probability"] == pytest.approx(probability, abs=1e-9)
            assert payload["best_counterpart_of_left"]["right"] == right_res.name


class TestInvalidTermSyntax:
    """Deltas naming terms the N-Triples codec cannot round-trip are
    rejected up front, with the offending triple in the message."""

    @pytest.fixture()
    def service(self):
        left, right = family_pair(3)
        return AlignmentService.cold_start(left, right, ParisConfig())

    @pytest.mark.parametrize(
        "subject, relation, obj",
        [
            ("has space", "name", "q0a"),
            ("ok", "bad relation", "q0a"),
            ("ok", "name", "angle>bracket"),
            ("new\nline", "name", "q0a"),
            ("quote\"inside", "name", "q0a"),
        ],
    )
    def test_rejected_before_mutation(self, service, subject, relation, obj):
        bad = Triple(Resource(subject), Relation(relation), Resource(obj))
        facts_before = service.state.ontology1.num_facts
        with pytest.raises(ValueError) as excinfo:
            service.apply_delta(Delta(add1=(bad,)))
        message = str(excinfo.value)
        assert "N-Triples" in message
        # The 400 must list the offending triple.
        assert subject in message or relation in message or obj in message
        assert service.poisoned is None
        assert service.state.ontology1.num_facts == facts_before

    def test_literal_values_are_not_restricted(self, service):
        """Literals escape through the codec, so any content is fine."""
        odd = Triple(
            Resource("p0a"), Relation("note"), Literal('line\nbreak "quoted" <x>')
        )
        report = service.apply_delta(Delta(add1=(odd,)))
        assert report.applied_add == 1


class TestFailStop:
    """A failure after mutation started must poison the service: no
    more serving (or snapshotting) of a possibly inconsistent state."""

    def test_mid_delta_failure_poisons_service(self, tmp_path, monkeypatch):
        from repro.core.aligner import ParisAligner

        left, right = family_pair(3)
        service = AlignmentService.cold_start(left, right, ParisConfig())

        def explode(*_args, **_kwargs):
            raise OSError("worker pool died")

        monkeypatch.setattr(ParisAligner, "warm_align", explode)
        add1, add2 = family_addition(3, 1)
        with pytest.raises(OSError):
            service.apply_delta(Delta(add1=tuple(add1), add2=tuple(add2)))
        assert service.poisoned is not None
        assert service.health()["status"] == "inconsistent"
        for call in (
            lambda: service.pair("p0a", "q0a"),
            lambda: service.alignment(),
            lambda: service.snapshot(tmp_path),
            lambda: service.apply_delta(Delta()),
        ):
            with pytest.raises(RuntimeError):
                call()

    def test_validation_failure_does_not_poison(self):
        from repro.rdf.vocabulary import RDFS_SUBPROPERTYOF

        left, right = family_pair(3)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        bad = Triple(Resource("a"), RDFS_SUBPROPERTYOF, Resource("b"))
        with pytest.raises(ValueError):
            service.apply_delta(Delta(add1=(bad,)))
        assert service.poisoned is None
        assert service.health()["status"] == "ok"
        assert service.pair("p0a", "q0a")["probability"] > 0.9


class TestServiceQueries:
    @pytest.fixture(scope="class")
    def service(self):
        left, right = family_pair(6)
        return AlignmentService.cold_start(left, right, ParisConfig())

    def test_pair(self, service):
        payload = service.pair("p0a", "q0a")
        assert payload["probability"] > 0.9
        assert payload["best_counterpart_of_left"]["right"] == "q0a"
        assert payload["best_counterpart_of_right"]["left"] == "p0a"

    def test_unknown_pair(self, service):
        payload = service.pair("p0a", "qnope")
        assert payload["probability"] == 0.0
        assert "best_counterpart_of_right" not in payload

    def test_alignment_threshold(self, service):
        everything = service.alignment()
        strong = service.alignment(threshold=0.9)
        assert strong and len(strong) <= len(everything)
        assert all(probability >= 0.9 for _l, _r, probability in strong)

    def test_health(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["matched_left"] == 18  # 6 families x 3 entities


class TestHttpServer:
    @pytest.fixture()
    def server(self, tmp_path):
        left, right = family_pair(5)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        server = build_server(service, "127.0.0.1", 0, state_dir=tmp_path)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    @staticmethod
    def url(server, path):
        host, port = server.server_address[:2]
        return f"http://{host}:{port}{path}"

    @staticmethod
    def get_json(server, path):
        with urllib.request.urlopen(TestHttpServer.url(server, path), timeout=30) as r:
            return json.load(r)

    @staticmethod
    def post_json(server, path, payload):
        request = urllib.request.Request(
            TestHttpServer.url(server, path),
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            return json.load(response)

    def test_healthz(self, server):
        health = self.get_json(server, "/healthz")
        assert health["status"] == "ok" and health["version"] == 0
        assert health["role"] == "primary"

    def test_stats_without_stream_stack(self, server, tmp_path):
        """A server running without --watch/--wal still reports a full
        /stats payload: engine counters, the state's WAL offset and a
        zero queue depth — one shape for routers and monitors."""
        stats = self.get_json(server, "/stats")
        assert stats["role"] == "primary"
        assert stats["wal_offset"] == 0
        assert stats["deltas_applied"] == 0
        assert stats["ingest"] == {
            "queue_depth": 0,
            "streaming": False,
            "wal_appended": 0,
        }
        add1, add2 = family_addition(5, 1)
        self.post_json(
            server, "/delta", Delta(add1=tuple(add1), add2=tuple(add2)).to_json()
        )
        stats = self.get_json(server, "/stats")
        assert stats["deltas_applied"] == 1
        assert stats["pairs_touched_total"] > 0

    def test_delta_then_pair(self, server, tmp_path):
        add1, add2 = family_addition(5, 1)
        delta = Delta(add1=tuple(add1), add2=tuple(add2))
        report = self.post_json(server, "/delta", delta.to_json())
        assert report["version"] == 1 and report["converged"]
        pair = self.get_json(server, "/pair/p5a/q5a")
        assert pair["probability"] > 0.9
        # The delta triggered an automatic snapshot.
        assert latest_version(tmp_path) == 1

    def test_alignment_json_and_tsv(self, server):
        alignment = self.get_json(server, "/alignment?threshold=0.5")
        assert alignment["pairs"]
        with urllib.request.urlopen(
            self.url(server, "/alignment?threshold=0.5&format=tsv"), timeout=30
        ) as response:
            text = response.read().decode("utf-8")
        assert text.count("\n") == len(alignment["pairs"])
        assert "\t" in text.splitlines()[0]

    def test_snapshot_endpoint(self, server, tmp_path):
        payload = self.post_json(server, "/snapshot", {})
        assert "snapshot" in payload
        assert latest_version(tmp_path) == 0

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as error:
            self.get_json(server, "/nope")
        assert error.value.code == 404

    def test_bad_delta_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as error:
            self.post_json(server, "/delta", {"left": {"add": [{"subject": "x"}]}})
        assert error.value.code == 400

    def test_null_field_delta_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as error:
            self.post_json(
                server,
                "/delta",
                {"left": {"add": [{"subject": None, "relation": "r", "object": "b"}]}},
            )
        assert error.value.code == 400

    def test_unapplicable_delta_400_leaves_state_untouched(self, server):
        facts_before = self.get_json(server, "/healthz")["facts_left"]
        with pytest.raises(urllib.error.HTTPError) as error:
            self.post_json(
                server,
                "/delta",
                {"left": {"add": [
                    {"subject": "p0a", "relation": "extra", "object": "x"},
                    {"subject": "a", "relation": "rdfs:subPropertyOf", "object": "b"},
                ]}},
            )
        assert error.value.code == 400
        health = self.get_json(server, "/healthz")
        assert health["facts_left"] == facts_before
        assert health["version"] == 0

    def test_invalid_ntriples_term_400_lists_triple(self, server):
        """A delta naming a term with invalid N-Triples syntax gets a
        400 whose body names the offending triple — not a codec
        traceback much later."""
        with pytest.raises(urllib.error.HTTPError) as error:
            self.post_json(
                server,
                "/delta",
                {"left": {"add": [
                    {"subject": "bad uri", "relation": "extra", "object": "x"},
                ]}},
            )
        assert error.value.code == 400
        body = json.load(error.value)
        assert "N-Triples" in body["error"]
        assert "bad uri" in body["error"]
        health = self.get_json(server, "/healthz")
        assert health["status"] == "ok" and health["version"] == 0

    def test_bad_threshold_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as error:
            self.get_json(server, "/alignment?threshold=abc")
        assert error.value.code == 400

    def test_snapshot_every_zero_defers_to_explicit_snapshot(self, tmp_path):
        left, right = family_pair(3)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        server = build_server(
            service, "127.0.0.1", 0, state_dir=tmp_path, snapshot_every=0
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            add1, add2 = family_addition(3, 1)
            delta = Delta(add1=tuple(add1), add2=tuple(add2))
            report = self.post_json(server, "/delta", delta.to_json())
            assert report["version"] == 1
            assert latest_version(tmp_path) is None  # no automatic snapshot
            self.post_json(server, "/snapshot", {})
            assert latest_version(tmp_path) == 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
