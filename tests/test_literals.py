"""Unit tests for the literal-similarity substrate (repro.literals)."""

import pytest

from repro.literals import (
    CompositeSimilarity,
    DateSimilarity,
    EditDistanceSimilarity,
    IdentitySimilarity,
    NormalizedIdentitySimilarity,
    NumericSimilarity,
    default_similarity,
    deletion_neighbourhood,
    levenshtein,
    normalize_string,
    parse_date,
    parse_number,
    strip_datatype,
    tolerant_similarity,
)
from repro.rdf.terms import Literal


class TestNormalization:
    def test_normalize_string_phone(self):
        assert normalize_string("213/467-1108") == normalize_string("213-467-1108")

    def test_normalize_string_case_and_punct(self):
        assert normalize_string("The  Godfather!") == "thegodfather"

    def test_parse_number_plain(self):
        assert parse_number("42") == 42.0
        assert parse_number("-3.5") == -3.5
        assert parse_number("1e3") == 1000.0

    def test_parse_number_thousands(self):
        assert parse_number("1,234") == 1234.0

    def test_parse_number_units_convert(self):
        assert parse_number("2 km") == parse_number("2000 m")
        assert parse_number("1 kg") == parse_number("1000 g")

    def test_parse_number_rejects_text(self):
        assert parse_number("hello") is None
        assert parse_number("Route 66 highway") is None

    def test_parse_date_iso(self):
        assert parse_date("1935-01-08") == (1935, 1, 8)

    def test_parse_date_slash_is_month_day_year(self):
        assert parse_date("1/8/1935") == (1935, 1, 8)

    def test_parse_date_year_only(self):
        assert parse_date("1935") == (1935, 0, 0)

    def test_parse_date_rejects_garbage(self):
        assert parse_date("not a date") is None

    def test_strip_datatype(self):
        assert strip_datatype('"5"^^xsd:integer') == "5"
        assert strip_datatype("plain") == "plain"


class TestIdentity:
    def test_identical(self):
        sim = IdentitySimilarity()
        assert sim(Literal("a"), Literal("a")) == 1.0

    def test_different(self):
        sim = IdentitySimilarity()
        assert sim(Literal("a"), Literal("b")) == 0.0

    def test_phone_format_mismatch_fails(self):
        # The Section 6.3 motivation: strict identity misses these.
        sim = IdentitySimilarity()
        assert sim(Literal("213/467-1108"), Literal("213-467-1108")) == 0.0

    def test_datatype_stripped(self):
        sim = IdentitySimilarity()
        assert sim(Literal('"5"^^xsd:integer'), Literal("5")) == 1.0

    def test_keys_single(self):
        sim = IdentitySimilarity()
        assert list(sim.keys(Literal("abc"))) == ["abc"]


class TestNormalizedIdentity:
    def test_phone_format_mismatch_matches(self):
        sim = NormalizedIdentitySimilarity()
        assert sim(Literal("213/467-1108"), Literal("213-467-1108")) == 1.0

    def test_case_insensitive(self):
        sim = NormalizedIdentitySimilarity()
        assert sim(Literal("The Golden Table"), Literal("the golden table")) == 1.0

    def test_content_difference_fails(self):
        sim = NormalizedIdentitySimilarity()
        assert sim(Literal("213-467-1108"), Literal("213-467-1109")) == 0.0

    def test_all_punctuation_strings(self):
        sim = NormalizedIdentitySimilarity()
        assert sim(Literal("!!!"), Literal("!!!")) == 1.0
        assert sim(Literal("!!!"), Literal("???")) == 0.0


class TestLevenshtein:
    @pytest.mark.parametrize(
        "left,right,expected",
        [
            ("", "", 0),
            ("a", "", 1),
            ("kitten", "sitting", 3),
            ("abc", "abc", 0),
            ("abc", "acb", 2),
            ("flaw", "lawn", 2),
        ],
    )
    def test_known_distances(self, left, right, expected):
        assert levenshtein(left, right) == expected

    def test_cutoff_short_circuits(self):
        assert levenshtein("aaaa", "bbbb", cutoff=1) == 2  # sentinel cutoff+1

    def test_cutoff_exact_when_within(self):
        assert levenshtein("kitten", "sitten", cutoff=2) == 1

    def test_symmetry(self):
        assert levenshtein("abcdef", "azced") == levenshtein("azced", "abcdef")


class TestDeletionNeighbourhood:
    def test_depth_zero(self):
        assert deletion_neighbourhood("abc", 0) == {"abc"}

    def test_depth_one(self):
        assert deletion_neighbourhood("abc", 1) == {"abc", "bc", "ac", "ab"}

    def test_blocking_completeness_depth_one(self):
        # Any two strings within distance 1 share a deletion variant.
        pairs = [("abc", "ab"), ("abc", "abd"), ("abc", "xabc"), ("abc", "abc")]
        for left, right in pairs:
            assert deletion_neighbourhood(left, 1) & deletion_neighbourhood(right, 1)


class TestEditDistanceSimilarity:
    def test_identical_is_one(self):
        sim = EditDistanceSimilarity()
        assert sim(Literal("kitten"), Literal("kitten")) == 1.0

    def test_one_typo_scores_high(self):
        sim = EditDistanceSimilarity(max_distance=1)
        value = sim(Literal("kitten"), Literal("sitten"))
        assert value == pytest.approx(1 - 1 / 6)

    def test_beyond_max_distance_is_zero(self):
        sim = EditDistanceSimilarity(max_distance=1)
        assert sim(Literal("kitten"), Literal("sitting")) == 0.0

    def test_normalization_absorbs_formatting(self):
        sim = EditDistanceSimilarity(max_distance=1)
        assert sim(Literal("213/467-1108"), Literal("213-467-1108")) == 1.0

    def test_keys_find_all_close_pairs(self):
        sim = EditDistanceSimilarity(max_distance=1)
        left_keys = set(sim.keys(Literal("kitten")))
        right_keys = set(sim.keys(Literal("sitten")))
        assert left_keys & right_keys

    def test_rejects_extreme_distance(self):
        with pytest.raises(ValueError):
            EditDistanceSimilarity(max_distance=9)
        with pytest.raises(ValueError):
            EditDistanceSimilarity(max_distance=-1)

    def test_empty_string_never_matches_nonempty(self):
        sim = EditDistanceSimilarity(max_distance=2)
        assert sim(Literal("!"), Literal("a")) == 0.0  # "!" normalizes to ""


class TestNumericSimilarity:
    def test_equal_values(self):
        sim = NumericSimilarity(tolerance=0.01)
        assert sim(Literal("42"), Literal("42.0")) == 1.0

    def test_within_tolerance(self):
        sim = NumericSimilarity(tolerance=0.10)
        value = sim(Literal("100"), Literal("105"))
        assert 0.0 < value < 1.0

    def test_outside_tolerance(self):
        sim = NumericSimilarity(tolerance=0.01)
        assert sim(Literal("100"), Literal("150")) == 0.0

    def test_non_numeric_is_zero(self):
        sim = NumericSimilarity()
        assert sim(Literal("hello"), Literal("42")) == 0.0

    def test_strict_mode(self):
        sim = NumericSimilarity(tolerance=0.0)
        assert sim(Literal("100"), Literal("100")) == 1.0
        assert sim(Literal("100"), Literal("100.001")) == 0.0

    def test_unit_conversion(self):
        sim = NumericSimilarity()
        assert sim(Literal("2 km"), Literal("2000 m")) == 1.0

    def test_blocking_keys_cover_tolerance(self):
        sim = NumericSimilarity(tolerance=0.10)
        # Values within tolerance must share at least one bucket key.
        keys_a = set(sim.keys(Literal("100")))
        keys_b = set(sim.keys(Literal("104")))
        assert keys_a & keys_b

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            NumericSimilarity(tolerance=-1)


class TestDateSimilarity:
    def test_equal_dates_different_layout(self):
        sim = DateSimilarity()
        assert sim(Literal("1935-01-08"), Literal("1/8/1935")) == 1.0

    def test_year_only_partial_match(self):
        sim = DateSimilarity()
        assert 0.0 < sim(Literal("1935"), Literal("1935-01-08")) < 1.0

    def test_different_dates(self):
        sim = DateSimilarity()
        assert sim(Literal("1935-01-08"), Literal("1936-01-08")) == 0.0

    def test_non_dates(self):
        sim = DateSimilarity()
        assert sim(Literal("hello"), Literal("1935-01-08")) == 0.0


class TestComposite:
    def test_routes_numbers(self):
        sim = CompositeSimilarity()
        assert sim(Literal("42"), Literal("42")) == 1.0

    def test_routes_dates(self):
        sim = CompositeSimilarity()
        assert sim(Literal("1935-01-08"), Literal("1/8/1935")) == 1.0

    def test_routes_strings(self):
        sim = CompositeSimilarity()
        assert sim(Literal("Elvis"), Literal("Elvis")) == 1.0
        assert sim(Literal("Elvis"), Literal("Cash")) == 0.0

    def test_mixed_kinds_zero(self):
        sim = CompositeSimilarity()
        assert sim(Literal("Elvis"), Literal("42")) == 0.0

    def test_keys_are_namespaced(self):
        sim = CompositeSimilarity()
        string_keys = set(sim.keys(Literal("abc")))
        number_keys = set(sim.keys(Literal("42")))
        assert not string_keys & number_keys

    def test_factories(self):
        assert isinstance(default_similarity(), IdentitySimilarity)
        assert isinstance(tolerant_similarity(), CompositeSimilarity)

    def test_names_are_informative(self):
        assert "identity" in IdentitySimilarity().name
        assert "edit" in EditDistanceSimilarity().name
        assert "composite" in CompositeSimilarity().name
