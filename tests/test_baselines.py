"""Unit tests for the baselines (Section 6.4 label matcher, ObjectCoref)."""


from repro.baselines import (
    OBJECTCOREF_RESULTS,
    align_by_labels,
    detect_label_relations,
    self_training_matcher,
)
from repro.rdf.builder import OntologyBuilder
from repro.rdf.terms import Relation, Resource


class TestDetectLabelRelations:
    def test_detects_conventional_names(self):
        onto = (
            OntologyBuilder("t")
            .value("a", "rdfs:label", "x")
            .value("a", "dbp:name", "y")
            .value("a", "born", "1950")
            .build()
        )
        detected = {r.name for r in detect_label_relations(onto)}
        assert detected == {"rdfs:label", "dbp:name"}


class TestLabelMatcher:
    def test_matches_unambiguous_shared_label(self):
        left = OntologyBuilder("l").value("a", "rdfs:label", "Elvis").build()
        right = OntologyBuilder("r").value("x", "imdb:label", "Elvis").build()
        assignment = align_by_labels(left, right)
        assert assignment[Resource("a")] == (Resource("x"), 1.0)

    def test_ambiguous_label_not_matched(self):
        left = (
            OntologyBuilder("l")
            .value("a", "rdfs:label", "Kim")
            .value("b", "rdfs:label", "Kim")
            .build()
        )
        right = OntologyBuilder("r").value("x", "imdb:label", "Kim").build()
        assert align_by_labels(left, right) == {}

    def test_label_mismatch_not_matched(self):
        left = OntologyBuilder("l").value("a", "rdfs:label", "Sugata Sanshiro").build()
        right = OntologyBuilder("r").value("x", "imdb:label", "Sanshiro Sugata").build()
        assert align_by_labels(left, right) == {}

    def test_explicit_label_relations(self):
        left = OntologyBuilder("l").value("a", "title", "Elvis").build()
        right = OntologyBuilder("r").value("x", "caption", "Elvis").build()
        assignment = align_by_labels(
            left,
            right,
            label_relations1=[Relation("title")],
            label_relations2=[Relation("caption")],
        )
        assert Resource("a") in assignment

    def test_conflicting_candidates_dropped(self):
        left = (
            OntologyBuilder("l")
            .value("a", "rdfs:label", "Alpha")
            .value("a", "rdfs:name", "Beta")
            .build()
        )
        right = (
            OntologyBuilder("r")
            .value("x", "imdb:label", "Alpha")
            .value("y", "imdb:label", "Beta")
            .build()
        )
        # 'a' has two disagreeing candidates -> no match
        assert align_by_labels(left, right) == {}


class TestObjectCoref:
    def test_reported_constants(self):
        person = OBJECTCOREF_RESULTS["person"]
        assert person.f1 == 1.0
        restaurant = OBJECTCOREF_RESULTS["restaurant"]
        assert restaurant.f1 == 0.90
        assert restaurant.precision is None

    def test_self_training_seeds_and_expands(self):
        left = (
            OntologyBuilder("l")
            .value("a", "name", "Elvis")
            .value("a", "phone", "111")
            .value("b", "name", "Kim")       # ambiguous name below
            .value("b", "phone", "222")
            .value("b", "city", "Memphis")
            .build()
        )
        right = (
            OntologyBuilder("r")
            .value("x", "label", "Elvis")
            .value("x", "tel", "111")
            .value("y", "label", "Kim")
            .value("z", "label", "Kim")
            .value("y", "tel", "222")
            .value("y", "town", "Memphis")
            .build()
        )
        assignment = self_training_matcher(left, right)
        assert assignment[Resource("a")][0] == Resource("x")
        # 'b' is recovered in the expansion round through phone+city overlap
        assert assignment[Resource("b")][0] == Resource("y")

    def test_self_training_no_overlap(self):
        left = OntologyBuilder("l").value("a", "name", "Alpha").build()
        right = OntologyBuilder("r").value("x", "label", "Omega").build()
        assert self_training_matcher(left, right) == {}
