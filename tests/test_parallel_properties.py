"""Property-based equivalence tests for the parallel engine.

For randomly generated small ontology pairs, the sharded engine must
produce scores equal to the sequential engine — within 1e-12, for
workers ∈ {1, 2, 4}, read through *both* directions of the store.
Hypothesis drives a seeded-random ontology generator, so every failure
shrinks to a reproducible seed.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import OntologyBuilder, ParisConfig, align
from repro.core.equivalence import instance_equivalence_pass
from repro.core.functionality import FunctionalityOracle
from repro.core.literal_index import LiteralIndex
from repro.core.matrix import SubsumptionMatrix
from repro.core.parallel import parallel_instance_equivalence_pass
from repro.core.store import EquivalenceStore
from repro.core.view import EquivalenceView
from repro.literals import IdentitySimilarity

TOLERANCE = 1e-12

#: Small pools so random ontologies overlap enough to produce matches.
_VALUES = ["Alice", "Bob", "Carol", "Dave", "Erin", "1959", "1961", "Tupelo"]
_LEFT_RELATIONS = ["born", "name", "city", "year"]
_RIGHT_RELATIONS = ["birth", "label", "place", "date"]


def random_pair(seed: int):
    """Two random small ontologies with partially overlapping literals."""
    rng = random.Random(seed)
    left = OntologyBuilder("left")
    right = OntologyBuilder("right")
    num_entities = rng.randint(2, 8)
    for n in range(num_entities):
        for _ in range(rng.randint(1, 4)):
            left.value(f"p{n}", rng.choice(_LEFT_RELATIONS), rng.choice(_VALUES))
        # The right-hand twin keeps some of the left's facts (same
        # literals through different relation names) and adds noise.
        for _ in range(rng.randint(0, 4)):
            right.value(f"x{n}", rng.choice(_RIGHT_RELATIONS), rng.choice(_VALUES))
        if rng.random() < 0.7:
            right.value(f"x{n}", rng.choice(_RIGHT_RELATIONS), rng.choice(_VALUES))
    # Occasional entity links on both sides (resource-valued facts).
    for _ in range(rng.randint(0, num_entities)):
        a, b = rng.randrange(num_entities), rng.randrange(num_entities)
        left.fact(f"p{a}", "knows", f"p{b}")
        if rng.random() < 0.5:
            right.fact(f"x{a}", "friend", f"x{b}")
    return left.build(), right.build()


def pass_inputs(pair):
    left, right = pair
    similarity = IdentitySimilarity()
    view = EquivalenceView(
        EquivalenceStore(),
        LiteralIndex(right, similarity),
        LiteralIndex(left, similarity),
    )
    return (
        left,
        right,
        view,
        FunctionalityOracle(left),
        FunctionalityOracle(right),
        SubsumptionMatrix.bootstrap(0.1),
        SubsumptionMatrix.bootstrap(0.1),
        0.1,
    )


def assert_scores_close(parallel_store, sequential_store):
    forward_seq = {(l, r): p for l, r, p in sequential_store.items()}
    forward_par = {(l, r): p for l, r, p in parallel_store.items()}
    assert forward_par.keys() == forward_seq.keys()
    for key, expected in forward_seq.items():
        assert abs(forward_par[key] - expected) <= TOLERANCE, key
    # the backward direction must carry the very same probabilities
    for (left, right), expected in forward_seq.items():
        backward = parallel_store.equals_of_right(right)
        assert abs(backward[left] - expected) <= TOLERANCE, (left, right)


@given(seed=st.integers(min_value=0, max_value=10**9))
@settings(max_examples=30, deadline=None)
def test_random_ontologies_parallel_equals_sequential(seed):
    inputs = pass_inputs(random_pair(seed))
    sequential = instance_equivalence_pass(*inputs)
    for workers in (1, 2, 4):
        parallel = parallel_instance_equivalence_pass(
            *inputs, workers=workers, backend="thread"
        )
        assert_scores_close(parallel, sequential)


@given(seed=st.integers(min_value=0, max_value=10**9))
@settings(max_examples=15, deadline=None)
def test_random_ontologies_full_align_equal(seed):
    left, right = random_pair(seed)
    sequential = align(left, right, ParisConfig(max_iterations=3))
    parallel = align(
        left,
        right,
        ParisConfig(max_iterations=3, workers=4, parallel_backend="thread"),
    )
    assert_scores_close(parallel.instances, sequential.instances)
    assert parallel.assignment12 == sequential.assignment12
    assert parallel.assignment21 == sequential.assignment21


@pytest.mark.parametrize("seed", [0, 7, 2011])
def test_random_ontologies_process_backend(seed):
    """A few seeds through real worker processes (slower than threads)."""
    inputs = pass_inputs(random_pair(seed))
    sequential = instance_equivalence_pass(*inputs)
    parallel = parallel_instance_equivalence_pass(
        *inputs, workers=2, backend="process"
    )
    assert_scores_close(parallel, sequential)
