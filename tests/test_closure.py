"""Unit tests for deductive closure (repro.rdf.closure)."""

import pytest

from repro.rdf.builder import OntologyBuilder
from repro.rdf.closure import (
    deductive_closure,
    depth_map,
    is_subclass_of,
    leaves,
    roots,
    superclass_closure,
    superproperty_closure,
    transitive_closure,
)
from repro.rdf.terms import Relation, Resource


class TestTransitiveClosure:
    def test_chain(self):
        edges = {"a": {"b"}, "b": {"c"}, "c": {"d"}}
        closed = transitive_closure(edges)
        assert closed["a"] == {"b", "c", "d"}
        assert closed["c"] == {"d"}

    def test_diamond(self):
        edges = {"a": {"b", "c"}, "b": {"d"}, "c": {"d"}}
        assert transitive_closure(edges)["a"] == {"b", "c", "d"}

    def test_cycle_terminates(self):
        edges = {"a": {"b"}, "b": {"a"}}
        closed = transitive_closure(edges)
        assert "a" in closed["b"]
        assert "b" in closed["a"]

    def test_self_loop(self):
        closed = transitive_closure({"a": {"a"}})
        assert closed["a"] == {"a"}

    def test_empty(self):
        assert transitive_closure({}) == {}


class TestDeductiveClosure:
    def test_membership_propagates_up(self):
        onto = (
            OntologyBuilder("t")
            .type("Elvis", "singer")
            .subclass("singer", "artist")
            .subclass("artist", "person")
            .build()
        )
        added = deductive_closure(onto)
        assert added == 2
        assert Resource("Elvis") in onto.instances_of(Resource("artist"))
        assert Resource("Elvis") in onto.instances_of(Resource("person"))

    def test_statements_propagate_to_superproperties(self):
        onto = (
            OntologyBuilder("t")
            .fact("Paris", "capitalOf", "France")
            .subproperty("capitalOf", "locatedIn")
            .build()
        )
        deductive_closure(onto)
        assert onto.has(Resource("Paris"), Relation("locatedIn"), Resource("France"))

    def test_idempotent(self):
        onto = (
            OntologyBuilder("t")
            .type("Elvis", "singer")
            .subclass("singer", "person")
            .build()
        )
        assert deductive_closure(onto) == 1
        assert deductive_closure(onto) == 0

    def test_transitive_subproperty_chain(self):
        onto = (
            OntologyBuilder("t")
            .fact("a", "r1", "b")
            .subproperty("r1", "r2")
            .subproperty("r2", "r3")
            .build()
        )
        deductive_closure(onto)
        assert onto.has(Resource("a"), Relation("r3"), Resource("b"))


class TestHierarchyQueries:
    @pytest.fixture()
    def onto(self):
        return (
            OntologyBuilder("t")
            .subclass("singer", "artist")
            .subclass("artist", "person")
            .subclass("painter", "artist")
            .build()
        )

    def test_superclass_closure(self, onto):
        closure = superclass_closure(onto)
        assert closure[Resource("singer")] == {Resource("artist"), Resource("person")}

    def test_is_subclass_of(self, onto):
        assert is_subclass_of(onto, Resource("singer"), Resource("person"))
        assert is_subclass_of(onto, Resource("singer"), Resource("singer"))
        assert not is_subclass_of(onto, Resource("person"), Resource("singer"))

    def test_roots_and_leaves(self, onto):
        assert roots(onto) == {Resource("person")}
        assert leaves(onto) == {Resource("singer"), Resource("painter")}

    def test_depth_map(self, onto):
        depths = depth_map(onto)
        assert depths[Resource("person")] == 0
        assert depths[Resource("artist")] == 1
        assert depths[Resource("singer")] == 2

    def test_superproperty_closure(self):
        onto = (
            OntologyBuilder("t")
            .subproperty("r1", "r2")
            .subproperty("r2", "r3")
            .build()
        )
        closure = superproperty_closure(onto)
        assert closure[Relation("r1")] == {Relation("r2"), Relation("r3")}
