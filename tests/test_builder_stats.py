"""Unit tests for OntologyBuilder, Triple, and ontology statistics."""

import pytest

from repro.rdf import OntologyBuilder, Triple, describe, statistics_table
from repro.rdf.builder import as_literal, as_node, as_relation, as_resource
from repro.rdf.terms import Literal, Relation, Resource


class TestCoercions:
    def test_as_resource(self):
        assert as_resource("x") == Resource("x")
        assert as_resource(Resource("x")) == Resource("x")

    def test_as_relation_parses_inverse(self):
        assert as_relation("r^-1") == Relation("r", inverted=True)
        assert as_relation(Relation("r")) == Relation("r")

    def test_as_node_numbers_become_literals(self):
        assert as_node(42) == Literal("42")
        assert as_node("x") == Resource("x")
        assert as_node(Literal("x")) == Literal("x")

    def test_as_literal(self):
        assert as_literal("x") == Literal("x")
        assert as_literal(5) == Literal("5")


class TestBuilder:
    def test_fact_and_value(self):
        onto = (
            OntologyBuilder("t")
            .fact("a", "r", "b")
            .value("a", "s", "text")
            .build()
        )
        assert onto.has(Resource("a"), Relation("r"), Resource("b"))
        assert onto.has(Resource("a"), Relation("s"), Literal("text"))

    def test_closed_builds_deductive_closure(self):
        onto = (
            OntologyBuilder("t")
            .type("e", "c")
            .subclass("c", "d")
            .closed()
            .build()
        )
        assert Resource("e") in onto.instances_of(Resource("d"))

    def test_unclosed_does_not(self):
        onto = OntologyBuilder("t").type("e", "c").subclass("c", "d").build()
        assert Resource("e") not in onto.instances_of(Resource("d"))

    def test_chaining_returns_builder(self):
        builder = OntologyBuilder("t")
        assert builder.fact("a", "r", "b") is builder


class TestTriple:
    def test_inverse(self):
        triple = Triple(Resource("a"), Relation("r"), Resource("b"))
        assert triple.inverse == Triple(Resource("b"), Relation("r").inverse, Resource("a"))

    def test_canonical_of_forward_is_self(self):
        triple = Triple(Resource("a"), Relation("r"), Resource("b"))
        assert triple.canonical == triple

    def test_canonical_of_inverse_flips(self):
        triple = Triple(Resource("b"), Relation("r", inverted=True), Resource("a"))
        assert triple.canonical == Triple(Resource("a"), Relation("r"), Resource("b"))
        assert triple.canonical == triple.inverse

    def test_str(self):
        triple = Triple(Resource("a"), Relation("r"), Resource("b"))
        assert str(triple) == "r(a, b)"


class TestStats:
    @pytest.fixture()
    def onto(self):
        return (
            OntologyBuilder("demo")
            .fact("a", "r", "b")
            .value("a", "s", "lit")
            .type("a", "C")
            .subclass("C", "D")
            .build()
        )

    def test_describe(self, onto):
        stats = describe(onto)
        assert stats.name == "demo"
        assert stats.num_instances == 2
        assert stats.num_classes == 2
        assert stats.num_relations == 2
        assert stats.num_facts == 2
        assert stats.num_type_statements == 1
        assert stats.num_subclass_edges == 1
        assert stats.num_literals == 1

    def test_as_row(self, onto):
        row = describe(onto).as_row()
        assert row["Ontology"] == "demo"
        assert row["#Instances"] == 2

    def test_statistics_table(self, onto):
        table = statistics_table([onto])
        assert "demo" in table
        assert "#Instances" in table
        assert len(table.splitlines()) == 3
