"""Observability stack: metrics registry, exposition, logging, spans.

Covers the stdlib-only observability layer (:mod:`repro.obs`) bottom-up:
Prometheus text exposition (escaping, label ordering, histogram bucket
shape), registry get-or-create semantics, thread-safety of counters,
the structured text/JSON log formatters, span trees — and the HTTP
surface: a raw ``GET /metrics`` scrape against all three serving roles
(primary, replica, router) plus the shared access log.
"""

from __future__ import annotations

import json
import logging
import math
import threading
import time
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ParisConfig
from repro.datasets.incremental import family_addition, family_pair
from repro.obs import REGISTRY, root_span, span
from repro.obs.logging import JsonFormatter, TextFormatter, setup_logging
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    escape_help,
    escape_label_value,
)
from repro.service import AlignmentService, Delta
from repro.service.replica import ReadRouter, ReplicaNode, build_router_server
from repro.service.server import build_server
from repro.service.stream import DeltaBatcher, StreamStack, WriteAheadLog


# ----------------------------------------------------------------------
# exposition format
# ----------------------------------------------------------------------


class TestExposition:
    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_escapes_total", "x", labelnames=("path",))
        counter.inc(path='a\\b"c\nd')
        text = registry.render()
        assert 't_escapes_total{path="a\\\\b\\"c\\nd"} 1' in text

    def test_help_escaping(self):
        assert escape_help("a\\b\nc") == "a\\\\b\\nc"
        assert escape_label_value('x"y') == 'x\\"y'

    def test_label_ordering_is_declared_order(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "t_order_total", "x", labelnames=("method", "route", "status")
        )
        # kwargs in a different order must not change the series key.
        counter.inc(status=200, method="GET", route="/pair")
        counter.inc(route="/pair", status=200, method="GET")
        text = registry.render()
        assert 't_order_total{method="GET",route="/pair",status="200"} 2' in text

    def test_counter_renders_integers_without_decimal_point(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_ints_total", "x")
        counter.inc(3)
        assert "t_ints_total 3\n" in registry.render()

    def test_help_and_type_lines(self):
        registry = MetricsRegistry()
        registry.gauge("t_gauge", "A gauge.")
        text = registry.render()
        assert "# HELP t_gauge A gauge.\n" in text
        assert "# TYPE t_gauge gauge\n" in text
        assert text.endswith("\n")

    def test_families_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("t_zz_total", "z")
        registry.counter("t_aa_total", "a")
        text = registry.render()
        assert text.index("t_aa_total") < text.index("t_zz_total")

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("t_shared_total", "x")
        second = registry.counter("t_shared_total", "x")
        assert first is second

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("t_kind_total", "x")
        with pytest.raises(ValueError):
            registry.gauge("t_kind_total", "x")

    def test_counter_rejects_negative_increment(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_neg_total", "x")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_callback_computed_at_scrape(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("t_cb", "x")
        value = {"v": 1.0}
        gauge.set_callback(lambda: value["v"])
        assert "t_cb 1\n" in registry.render()
        value["v"] = 7.5
        assert "t_cb 7.5\n" in registry.render()


# ----------------------------------------------------------------------
# histograms
# ----------------------------------------------------------------------


class TestHistogram:
    def test_default_buckets_strictly_increasing(self):
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
        assert len(set(LATENCY_BUCKETS)) == len(LATENCY_BUCKETS)

    def test_invalid_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("t_bad_seconds", "x", buckets=(1.0, 1.0))

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(
                min_value=0.0, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_bucket_counts_monotone_and_complete(self, observations):
        registry = MetricsRegistry()
        histogram = registry.histogram("t_mono_seconds", "x")
        for value in observations:
            histogram.observe(value)
        cumulative, total_sum, count = histogram.snapshot()
        # Cumulative bucket counts never decrease, and +Inf == count.
        assert cumulative == sorted(cumulative)
        assert len(cumulative) == len(histogram.buckets) + 1
        assert cumulative[-1] == count == len(observations)
        assert total_sum == pytest.approx(sum(observations), rel=1e-9, abs=1e-9)
        # Each cumulative bucket holds exactly the observations <= le.
        bounds = list(histogram.buckets) + [math.inf]
        for le, n in zip(bounds, cumulative):
            assert n == sum(1 for value in observations if value <= le)

    def test_exposition_shape(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "t_shape_seconds", "x", buckets=(0.1, 1.0), labelnames=("op",)
        )
        histogram.observe(0.05, op="a")
        histogram.observe(2.0, op="a")
        text = registry.render()
        assert 't_shape_seconds_bucket{op="a",le="0.1"} 1' in text
        assert 't_shape_seconds_bucket{op="a",le="1"} 1' in text
        assert 't_shape_seconds_bucket{op="a",le="+Inf"} 2' in text
        assert 't_shape_seconds_count{op="a"} 2' in text
        assert 't_shape_seconds_sum{op="a"} 2.05' in text


# ----------------------------------------------------------------------
# concurrency
# ----------------------------------------------------------------------


class TestConcurrency:
    def test_concurrent_counter_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_race_total", "x", labelnames=("who",))
        threads, per_thread = 8, 2000

        def work(who):
            for _ in range(per_thread):
                counter.inc(who=who)
                counter.inc(who="shared")

        pool = [
            threading.Thread(target=work, args=(str(i % 2),)) for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.value(who="shared") == threads * per_thread
        assert counter.value(who="0") + counter.value(who="1") == threads * per_thread


# ----------------------------------------------------------------------
# structured logging
# ----------------------------------------------------------------------


def make_record(event, **fields):
    record = logging.LogRecord(
        "repro.test", logging.INFO, __file__, 1, event, None, None
    )
    for key, value in fields.items():
        setattr(record, key, value)
    return record


class TestLogging:
    def test_json_formatter_emits_one_object_per_line(self):
        line = JsonFormatter().format(make_record("thing happened", a=1, b="x y"))
        payload = json.loads(line)
        assert payload["event"] == "thing happened"
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.test"
        assert payload["a"] == 1 and payload["b"] == "x y"
        assert payload["ts"].endswith("Z")

    def test_text_formatter_quotes_spaced_values(self):
        line = TextFormatter().format(make_record("boot", path="a b", n=3))
        assert "boot" in line and 'path="a b"' in line and "n=3" in line

    def test_setup_logging_is_idempotent(self):
        logger = logging.getLogger("repro")
        before = list(logger.handlers)
        try:
            setup_logging(level="warning", log_format="json")
            setup_logging(level="warning", log_format="json")
            assert len(logger.handlers) == 1
            assert logger.level == logging.WARNING
        finally:
            for handler in list(logger.handlers):
                logger.removeHandler(handler)
            for handler in before:
                logger.addHandler(handler)
            logger.setLevel(logging.NOTSET)
            logger.propagate = True

    def test_setup_logging_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            setup_logging(level="loud")


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------


class TestSpans:
    def test_span_tree_nests_and_times(self):
        with root_span("outer", size=3) as outer:
            with span("inner", step=1):
                pass
            with span("inner", step=2) as second:
                second.annotate(extra="yes")
        tree = outer.to_dict()
        assert tree["span"] == "outer" and tree["size"] == 3
        assert tree["duration_s"] >= 0
        assert [child["span"] for child in tree["children"]] == ["inner", "inner"]
        assert tree["children"][1]["extra"] == "yes"

    def test_root_span_isolates_from_enclosing_tree(self):
        with root_span("a") as first:
            with root_span("b") as second:
                with span("leaf"):
                    pass
        assert "children" not in first.to_dict()
        assert [c["span"] for c in second.to_dict()["children"]] == ["leaf"]

    def test_spans_feed_the_duration_histogram(self):
        histogram = REGISTRY.get("repro_span_duration_seconds")
        _cumulative, _sum, before = histogram.snapshot(span="t.obs.probe")
        with span("t.obs.probe"):
            pass
        _cumulative, _sum, after = histogram.snapshot(span="t.obs.probe")
        assert after == before + 1


# ----------------------------------------------------------------------
# HTTP surface: /metrics on every role + the shared access log
# ----------------------------------------------------------------------


def family_delta(start):
    add1, add2 = family_addition(start, 1)
    return Delta(add1=tuple(add1), add2=tuple(add2))


def url_of(server, path=""):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def scrape(server):
    with urllib.request.urlopen(url_of(server, "/metrics"), timeout=30) as response:
        return response.read().decode("utf-8"), response.headers


def assert_valid_exposition(text):
    assert text.endswith("\n")
    for line in text.splitlines():
        assert line, "exposition must not contain blank lines"
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE "))
        else:
            name_part, value = line.rsplit(" ", 1)
            float(value)  # every sample value parses as a float
            assert name_part.startswith("repro_")


class TestMetricsEndpoint:
    @pytest.fixture()
    def cluster(self, tmp_path):
        """Primary (WAL + stream) + one replica server + router."""
        left, right = family_pair(4)
        primary = AlignmentService.cold_start(left, right, ParisConfig())
        state_dir = tmp_path / "state"
        primary.snapshot(state_dir)
        wal = WriteAheadLog(state_dir / "wal.ndjson")
        batcher = DeltaBatcher(primary, wal=wal, max_batch=8, max_lag=0.01)
        stream = StreamStack(batcher=batcher, wal=wal).start()
        primary_server = build_server(
            primary, "127.0.0.1", 0, state_dir=state_dir,
            stream=stream, snapshot_every=0,
        )
        replica = ReplicaNode(state_dir, batch=8)
        replica_server = build_server(None, "127.0.0.1", 0, replica=replica)
        router = ReadRouter(
            url_of(primary_server), [url_of(replica_server)], check_interval=30.0
        )
        router_server = build_router_server(router)
        servers = (primary_server, replica_server, router_server)
        threads = [
            threading.Thread(target=server.serve_forever, daemon=True)
            for server in servers
        ]
        for thread in threads:
            thread.start()
        yield {
            "primary": primary,
            "primary_server": primary_server,
            "replica": replica,
            "replica_server": replica_server,
            "router_server": router_server,
        }
        for server in servers:
            server.shutdown()
            server.server_close()
        replica.stop()
        stream.stop()
        for thread in threads:
            thread.join(timeout=10)

    def test_all_three_roles_serve_valid_exposition(self, cluster):
        for role in ("primary_server", "replica_server", "router_server"):
            text, headers = scrape(cluster[role])
            assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
            assert_valid_exposition(text)
            # The shared request metrics exist on every role.
            assert "# TYPE repro_requests_total counter" in text
            assert "# TYPE repro_request_duration_seconds histogram" in text

    def test_request_metrics_count_scrapes(self, cluster):
        scrape(cluster["primary_server"])  # prime the /metrics series
        text, _headers = scrape(cluster["primary_server"])
        assert 'repro_requests_total{method="GET",route="/metrics",status="200"}' in text
        assert 'repro_request_duration_seconds_bucket{method="GET",route="/metrics"' in text

    def test_replica_applied_offset_converges_to_primary(self, cluster):
        primary, replica = cluster["primary"], cluster["replica"]
        # Write through the primary's HTTP surface so the WAL advances.
        request = urllib.request.Request(
            url_of(cluster["primary_server"], "/delta"),
            data=json.dumps(family_delta(4).to_json()).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            assert json.load(response)["converged"]
        replica.catch_up(primary.state.wal_offset)
        assert replica.applied_offset == primary.state.wal_offset
        # Both engines publish the same applied-offset gauge.
        gauge = REGISTRY.get("repro_wal_applied_offset")
        assert gauge.value() == primary.state.wal_offset

    def test_access_log_emits_request_fields(self, cluster):
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        handler = Capture()
        access = logging.getLogger("repro.access")
        access.addHandler(handler)
        # Without setup_logging the logger inherits the root's WARNING
        # threshold; open it up for the capture.
        previous_level = access.level
        access.setLevel(logging.INFO)
        try:
            with urllib.request.urlopen(
                url_of(cluster["primary_server"], "/healthz?source=s1&seq=4"),
                timeout=30,
            ):
                pass
            # The access line is emitted after the response flushes, so
            # the client can get here first: poll briefly for it.
            deadline = time.monotonic() + 10
            matching = []
            while not matching and time.monotonic() < deadline:
                matching = [
                    r for r in records if getattr(r, "path", None) == "/healthz"
                ]
                if not matching:
                    time.sleep(0.02)
        finally:
            access.removeHandler(handler)
            access.setLevel(previous_level)
        assert matching, "no access-log record for the request"
        record = matching[-1]
        assert record.getMessage() == "request"
        assert record.method == "GET" and record.status == 200
        assert record.source == "s1" and record.seq == "4"
        assert record.duration_ms >= 0 and record.bytes > 0
