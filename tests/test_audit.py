"""Fleet correctness auditing (PR 10).

Covers the audit layer bottom-up: the deterministic pair hash and the
order-insensitive XOR fold, the hypothesis property that the
incrementally-maintained digest equals a full recompute under random
interleaved add/remove delta batches, offset-keyed checkpoint history,
engine integration (snapshot/restart and replica re-bootstrap carry the
digest), the :class:`~repro.service.audit.StateAuditor` background
cold-verification (sampled rows and the full-digest check, the
mismatch latch, the degraded ``/healthz``), the ``GET /digest`` HTTP
surface, the router's ``GET /fleet`` comparison and ``GET /provenance``
relay, and the ``repro doctor`` CLI verdict on a clean and on a
corrupted fleet.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import _build_auditor, build_parser, cmd_doctor
from repro.core.config import ParisConfig
from repro.core.result import apply_assignment_delta
from repro.datasets.incremental import family_addition, family_pair
from repro.obs.audit import (
    AUDIT_MISMATCH,
    SCORE_QUANTUM,
    DigestMaintainer,
    digest_assignment,
    format_digest,
    pair_hash,
    parse_digest,
    range_digest,
)
from repro.rdf.terms import Resource
from repro.service import AlignmentService, Delta, latest_version, load_state
from repro.service.audit import StateAuditor
from repro.service.replica import ReadRouter, ReplicaNode, build_router_server
from repro.service.server import build_server
from repro.service.stream import DeltaBatcher, StreamStack, WriteAheadLog


def family_delta(start: int, count: int = 1) -> Delta:
    add1, add2 = family_addition(start, count)
    return Delta(add1=tuple(add1), add2=tuple(add2))


def wait_until(condition, seconds=60.0):
    deadline = time.monotonic() + seconds
    while not condition():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.05)


def url_of(server, path=""):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def get_json(url, timeout=60):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def serve(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


def corrupt_without_maintainer(service, scale=0.5):
    """Flip one pair's score in assignment *and* store, leaving the
    incremental digest stale — the shape of silent in-process state
    corruption.  Caught by the full-digest audit check and by
    ``/digest?verify=1``, not by the sampled row check (both resident
    copies agree on the corrupted value)."""
    with service.lock:
        entity, (counterpart, probability) = next(iter(service._assignment12.items()))
        corrupted = probability * scale
        service._assignment12[entity] = (counterpart, corrupted)
        service.state.store.set(entity, counterpart, corrupted)
    return entity, counterpart


def corrupt_with_maintainer(service, scale=0.5):
    """Divergence as replication would produce it: the bad pair went
    through the node's own apply path, so its incremental digest is
    coherent with the corrupted state — only a *cross-node* digest
    comparison (``GET /fleet``, ``repro doctor``) can see it."""
    with service.lock:
        entity, (counterpart, probability) = next(iter(service._assignment12.items()))
        corrupted = probability * scale
        service.digests.apply(
            {entity: (counterpart, corrupted)},
            service._assignment12,
            service.digests.wal_offset,
        )
        service._assignment12[entity] = (counterpart, corrupted)
        service.state.store.set(entity, counterpart, corrupted)
    return entity, counterpart


# ----------------------------------------------------------------------
# pair hash + fold
# ----------------------------------------------------------------------


class TestPairHash:
    def test_deterministic_across_calls(self):
        assert pair_hash("a", "b", 0.5) == pair_hash("a", "b", 0.5)

    def test_sides_are_not_interchangeable(self):
        assert pair_hash("a", "b", 0.5) != pair_hash("b", "a", 0.5)
        # The separator byte keeps ("ab","c") distinct from ("a","bc").
        assert pair_hash("ab", "c", 0.5) != pair_hash("a", "bc", 0.5)

    def test_score_quantization(self):
        base = pair_hash("x", "y", 0.5)
        # A sub-quantum perturbation lands in the same grid cell…
        assert pair_hash("x", "y", 0.5 + SCORE_QUANTUM / 100) == base
        # …a super-quantum one does not.
        assert pair_hash("x", "y", 0.5 + 10 * SCORE_QUANTUM) != base

    def test_format_parse_round_trip(self):
        for value in (0, 1, pair_hash("a", "b", 0.25), (1 << 64) - 1):
            text = format_digest(value)
            assert len(text) == 16
            assert parse_digest(text) == value


class TestDigestFold:
    def assignment(self, pairs):
        return {
            Resource(left): (Resource(right), probability)
            for left, right, probability in pairs
        }

    def test_empty_assignment_is_zero(self):
        assert digest_assignment({}) == 0

    def test_fold_is_order_insensitive(self):
        pairs = [("a", "x", 0.9), ("b", "y", 0.8), ("c", "z", 0.7)]
        forward = self.assignment(pairs)
        backward = self.assignment(list(reversed(pairs)))
        assert digest_assignment(forward) == digest_assignment(backward)

    def test_removal_is_xor_inverse(self):
        full = self.assignment([("a", "x", 0.9), ("b", "y", 0.8)])
        without = self.assignment([("a", "x", 0.9)])
        removed = pair_hash("b", "y", 0.8)
        assert digest_assignment(full) ^ removed == digest_assignment(without)

    def test_range_digests_partition_the_whole(self):
        assignment = self.assignment(
            [(f"e{i:02d}", f"r{i:02d}", 0.5 + i / 100) for i in range(10)]
        )
        whole = range_digest(assignment)
        mid = whole["mid"]
        left = range_digest(assignment, hi=mid)
        right = range_digest(assignment, lo=mid + "\x00")
        assert left["count"] + right["count"] == whole["count"] == 10
        assert parse_digest(left["digest"]) ^ parse_digest(right["digest"]) == (
            parse_digest(whole["digest"])
        )

    def test_range_bounds_are_inclusive(self):
        assignment = self.assignment([("a", "x", 0.9), ("b", "y", 0.8)])
        only_a = range_digest(assignment, lo="a", hi="a")
        assert only_a["count"] == 1 and only_a["min"] == "a"


# ----------------------------------------------------------------------
# incremental maintenance ≡ full recompute (the hypothesis property)
# ----------------------------------------------------------------------

# One random step: entity index → new match (counterpart index, score)
# or None (the entity lost its counterpart).  Interleaved over a small
# key space so steps genuinely add, rematch, and remove pairs.
_steps = st.lists(
    st.dictionaries(
        st.integers(0, 9),
        st.one_of(
            st.none(),
            st.tuples(
                st.integers(0, 7),
                st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
            ),
        ),
        max_size=6,
    ),
    min_size=1,
    max_size=12,
)


def _materialize(raw):
    delta = {}
    for left_index, match in raw.items():
        entity = Resource(f"left-{left_index}")
        if match is None:
            delta[entity] = None
        else:
            delta[entity] = (Resource(f"right-{match[0]}"), match[1])
    return delta


class TestDigestMaintainerProperty:
    @given(steps=_steps)
    @settings(max_examples=40, deadline=None)
    def test_incremental_equals_full_recompute(self, steps):
        assignment = {}
        maintainer = DigestMaintainer(assignment)
        checkpoints = [(0, maintainer.digest)]
        for offset, raw in enumerate(steps, start=1):
            delta = _materialize(raw)
            previous = dict(assignment)
            apply_assignment_delta(assignment, delta)
            maintainer.apply(delta, previous, offset)
            assert maintainer.digest == digest_assignment(assignment)
            assert maintainer.wal_offset == offset
            checkpoints.append((offset, maintainer.digest))
        # Every offset in the bounded history answers with the digest
        # the state had *at that offset* — the doctor's comparison key.
        for offset, digest in checkpoints:
            assert maintainer.at_offset(offset) == digest

    def test_advance_checkpoints_noop_batches(self):
        maintainer = DigestMaintainer({}, wal_offset=3)
        maintainer.advance(7)
        assert maintainer.wal_offset == 7
        assert maintainer.at_offset(7) == maintainer.digest
        assert maintainer.at_offset(3) == maintainer.digest

    def test_history_is_bounded(self):
        maintainer = DigestMaintainer({}, wal_offset=0, history=4)
        for offset in range(1, 10):
            maintainer.advance(offset)
        assert maintainer.at_offset(1) is None
        assert maintainer.at_offset(9) == maintainer.digest

    def test_last_touched_tracks_offsets(self):
        entity = Resource("left-0")
        other = Resource("left-1")
        assignment = {}
        maintainer = DigestMaintainer(assignment)
        delta = {entity: (Resource("right-0"), 0.9)}
        apply_assignment_delta(assignment, delta)
        maintainer.apply(delta, {}, 5)
        delta = {other: (Resource("right-1"), 0.8)}
        previous = dict(assignment)
        apply_assignment_delta(assignment, delta)
        maintainer.apply(delta, previous, 9)
        assert maintainer.offsets_touching([entity]) == [5]
        assert maintainer.offsets_touching([entity, other]) == [5, 9]
        assert maintainer.offsets_touching([Resource("never")]) == []


# ----------------------------------------------------------------------
# engine integration: deltas, snapshot/restart, replica re-bootstrap
# ----------------------------------------------------------------------


class TestEngineDigest:
    def build(self):
        left, right = family_pair(6)
        return AlignmentService.cold_start(left, right, ParisConfig())

    def test_digest_maintained_across_interleaved_deltas(self):
        service = self.build()
        assert service.digests.digest == digest_assignment(service._assignment12)
        assert service.state.digest == service.digests.digest
        offset = 0
        for step in range(4):
            add1, add2 = family_addition(6 + step, 1)
            offset += 1
            service.apply_delta(
                Delta(add1=tuple(add1), add2=tuple(add2)), wal_offset=offset
            )
            assert service.digests.digest == digest_assignment(service._assignment12)
            # Remove one of the triples we just added: the digest must
            # follow net pair changes through removals too.
            offset += 1
            service.apply_delta(Delta(remove1=(add1[0],)), wal_offset=offset)
            assert service.digests.digest == digest_assignment(service._assignment12)
            assert service.digests.wal_offset == offset
            assert service.state.digest == service.digests.digest

    def test_snapshot_restart_verifies_digest(self, tmp_path):
        service = self.build()
        service.apply_delta(family_delta(6), wal_offset=1)
        expected = service.digests.digest
        service.snapshot(tmp_path)
        state = load_state(tmp_path, latest_version(tmp_path))
        assert state.digest == expected
        before = AUDIT_MISMATCH.value(kind="bootstrap")
        restarted = AlignmentService.from_state(state)
        assert AUDIT_MISMATCH.value(kind="bootstrap") == before
        assert restarted.digests.digest == expected
        assert restarted.digests.wal_offset == 1

    def test_corrupted_snapshot_digest_flags_bootstrap(self, tmp_path):
        service = self.build()
        service.snapshot(tmp_path)
        state = load_state(tmp_path, latest_version(tmp_path))
        state.digest ^= 1
        before = AUDIT_MISMATCH.value(kind="bootstrap")
        restarted = AlignmentService.from_state(state)
        assert AUDIT_MISMATCH.value(kind="bootstrap") == before + 1
        # The restarted engine trusts its own recompute, not the stamp.
        assert restarted.digests.digest == digest_assignment(restarted._assignment12)

    def test_pre_digest_snapshots_still_load(self, tmp_path):
        service = self.build()
        service.snapshot(tmp_path)
        state = load_state(tmp_path, latest_version(tmp_path))
        state.__dict__.pop("digest")
        revived = type(state).__new__(type(state))
        revived.__setstate__(state.__dict__)
        assert revived.digest is None
        restarted = AlignmentService.from_state(revived)
        assert restarted.digests.digest == digest_assignment(restarted._assignment12)

    def test_replica_matches_primary_across_rebootstrap(self, tmp_path):
        left, right = family_pair(6)
        primary = AlignmentService.cold_start(left, right, ParisConfig())
        state_dir = tmp_path / "state"
        primary.snapshot(state_dir)
        wal = WriteAheadLog(state_dir / "wal.ndjson", segment_bytes=400)
        offset = 0
        for step in range(3):
            delta = family_delta(6 + step)
            offset = wal.append(delta, "writer", step + 1)
            primary.apply_delta(delta, wal_offset=offset)
        replica = ReplicaNode(state_dir, batch=2)
        replica.catch_up(offset)
        assert replica.service.digests.snapshot() == primary.digests.snapshot()
        # Compact past the replica's cursor and keep writing: the node
        # re-bootstraps from the newer snapshot, and the digest it
        # rebuilds from that state still matches the primary's.
        for step in range(3, 6):
            delta = family_delta(6 + step)
            offset = wal.append(delta, "writer", step + 1)
            primary.apply_delta(delta, wal_offset=offset)
        primary.snapshot(state_dir)
        reclaimed, _deleted = wal.compact(primary.state.wal_offset)
        assert reclaimed > 0
        replica.auditor = StateAuditor(lambda: replica.service, role="replica")
        replica.auditor.last_mismatch = {"kind": "sample", "wal_offset": 0}
        replica.start()
        try:
            wait_until(lambda: replica.applied_offset == offset)
        finally:
            replica.stop()
        assert replica.rebootstraps == 1
        assert replica.service.digests.snapshot() == primary.digests.snapshot()
        # Re-bootstrap replaced the state wholesale: the mismatch latch
        # of the node-owned auditor is cleared with it.
        assert replica.auditor.last_mismatch is None
        wal.close()


# ----------------------------------------------------------------------
# the background auditor
# ----------------------------------------------------------------------


class TestStateAuditor:
    def build(self):
        left, right = family_pair(6)
        return AlignmentService.cold_start(left, right, ParisConfig())

    def test_clean_state_audits_clean(self):
        service = self.build()
        auditor = StateAuditor(lambda: service, sample=1000, full_every=1, seed=7)
        assert auditor.check_once() is None
        assert auditor.checks > 0
        assert auditor.mismatches == 0
        assert auditor.last_audit_ts is not None
        assert auditor.degraded() is None
        stats = auditor.stats()
        assert stats["digest"] == format_digest(service.digests.digest)
        assert stats["digest_offset"] == service.digests.wal_offset
        assert "last_mismatch" not in stats

    def test_sampled_check_catches_store_vs_assignment_drift(self):
        service = self.build()
        with service.lock:
            entity, (counterpart, probability) = next(
                iter(service._assignment12.items())
            )
            # The store drifts but the maintained assignment does not —
            # exactly what the sampled cold-recompute is for.
            service.state.store.set(entity, counterpart, probability / 2)
        auditor = StateAuditor(
            lambda: service, sample=1000, full_every=1000, seed=7, role="replica"
        )
        mismatch = auditor.check_once()
        assert mismatch is not None and mismatch["kind"] == "sample"
        assert mismatch["left"] == entity.name
        assert mismatch["role"] == "replica"
        assert auditor.mismatches >= 1
        degraded = auditor.degraded()
        assert degraded is not None and entity.name in degraded

    def test_digest_check_catches_coherent_corruption(self):
        service = self.build()
        entity, _counterpart = corrupt_without_maintainer(service)
        auditor = StateAuditor(lambda: service, sample=0, full_every=1, seed=7)
        before = AUDIT_MISMATCH.value(kind="digest")
        mismatch = auditor.check_once()
        assert mismatch is not None and mismatch["kind"] == "digest"
        assert AUDIT_MISMATCH.value(kind="digest") == before + 1
        assert "digest" in auditor.degraded()

    def test_latch_survives_clean_cycles_until_reset(self):
        service = self.build()
        corrupt_without_maintainer(service)
        auditor = StateAuditor(lambda: service, sample=0, full_every=1, seed=7)
        auditor.check_once()
        first = auditor.last_mismatch
        assert first is not None
        # Heal the state; the latch must stay — divergence happened.
        with service.lock:
            service.digests.digest = digest_assignment(service._assignment12)
        auditor.check_once()
        assert auditor.last_mismatch is first
        auditor.reset()
        assert auditor.last_mismatch is None
        assert auditor.degraded() is None

    def test_absent_or_poisoned_service_is_skipped(self):
        auditor = StateAuditor(lambda: None)
        assert auditor.check_once() is None
        service = self.build()
        service.poisoned = "simulated fail-stop"
        auditor = StateAuditor(lambda: service, full_every=1)
        assert auditor.check_once() is None
        assert auditor.checks == 0

    def test_background_thread_runs_and_stops(self):
        service = self.build()
        auditor = StateAuditor(lambda: service, interval_ms=20, sample=4, full_every=1)
        auditor.start()
        try:
            wait_until(lambda: auditor.checks > 0)
        finally:
            auditor.stop()
        assert auditor._thread is None
        assert auditor.mismatches == 0


# ----------------------------------------------------------------------
# GET /digest and the degraded /healthz
# ----------------------------------------------------------------------


class TestDigestEndpoint:
    @pytest.fixture()
    def node(self):
        left, right = family_pair(6)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        for offset in range(1, 4):
            service.apply_delta(family_delta(5 + offset), wal_offset=offset)
        auditor = StateAuditor(lambda: service, sample=0, full_every=1, seed=7)
        server = build_server(service, "127.0.0.1", 0, auditor=auditor)
        thread = serve(server)
        yield {"service": service, "server": server, "auditor": auditor}
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    def test_current_digest(self, node):
        status, payload = get_json(url_of(node["server"], "/digest"))
        assert status == 200
        assert payload["role"] == "primary"
        assert payload["wal_offset"] == 3
        assert payload["digest"] == format_digest(node["service"].digests.digest)
        assert payload["pairs"] == len(node["service"]._assignment12)

    def test_offset_keyed_lookup_and_aged_out(self, node):
        status, payload = get_json(url_of(node["server"], "/digest?offset=2"))
        assert status == 200
        at = payload["at_offset"]
        assert at["wal_offset"] == 2
        assert parse_digest(at["digest"]) == node["service"].digests.at_offset(2)
        status, payload = get_json(url_of(node["server"], "/digest?offset=999"))
        assert status == 409
        assert "999" in payload["error"]
        status, _payload = get_json(url_of(node["server"], "/digest?offset=nan"))
        assert status == 400

    def test_range_subdigests_partition(self, node):
        status, whole = get_json(url_of(node["server"], "/digest?lo="))
        assert status == 200 and whole["range"]["count"] > 0
        mid = urllib.parse.quote(whole["range"]["mid"])
        status, left = get_json(url_of(node["server"], f"/digest?lo=&hi={mid}"))
        assert status == 200
        status, right = get_json(
            url_of(node["server"], f"/digest?lo={mid}%00")
        )
        assert status == 200
        assert (
            parse_digest(left["range"]["digest"])
            ^ parse_digest(right["range"]["digest"])
        ) == parse_digest(whole["range"]["digest"])

    def test_verify_self_check(self, node):
        status, payload = get_json(url_of(node["server"], "/digest?verify=1"))
        assert status == 200
        assert payload["verified"] is True
        assert payload["recomputed"] == payload["digest"]
        corrupt_without_maintainer(node["service"])
        status, payload = get_json(url_of(node["server"], "/digest?verify=1"))
        assert status == 200
        assert payload["verified"] is False
        assert payload["recomputed"] != payload["digest"]

    def test_healthz_degrades_on_latched_mismatch(self, node):
        status, payload = get_json(url_of(node["server"], "/healthz"))
        assert status == 200 and payload["status"] == "ok"
        corrupt_without_maintainer(node["service"])
        node["auditor"].check_once()
        status, payload = get_json(url_of(node["server"], "/healthz"))
        assert status == 200
        assert payload["status"] == "degraded"
        assert "audit mismatch" in payload["degraded"]

    def test_stats_carries_audit_block(self, node):
        node["auditor"].check_once()
        status, payload = get_json(url_of(node["server"], "/stats"))
        assert status == 200
        audit = payload["audit"]
        assert audit["checks"] >= 1 and audit["mismatches"] == 0
        assert audit["digest"] == format_digest(node["service"].digests.digest)
        assert audit["digest_offset"] == payload["wal_offset"]


# ----------------------------------------------------------------------
# fleet surfaces: GET /fleet, router /provenance relay, repro doctor
# ----------------------------------------------------------------------


class TestFleet:
    @pytest.fixture()
    def fleet(self, tmp_path):
        """Primary (stream + WAL) + one replica server + router."""
        left, right = family_pair(6)
        primary = AlignmentService.cold_start(left, right, ParisConfig())
        state_dir = tmp_path / "state"
        primary.snapshot(state_dir)
        wal = WriteAheadLog(state_dir / "wal.ndjson")
        batcher = DeltaBatcher(primary, wal=wal, max_batch=8, max_lag=0.02)
        stream = StreamStack(batcher=batcher, wal=wal).start()
        primary_server = build_server(
            primary, "127.0.0.1", 0, state_dir=state_dir,
            stream=stream, snapshot_every=0,
        )
        replica = ReplicaNode(state_dir, batch=8).start()
        replica_auditor = StateAuditor(
            lambda: replica.service, sample=0, full_every=1,
            role="replica", seed=7,
        )
        replica.auditor = replica_auditor
        replica_server = build_server(
            None, "127.0.0.1", 0, replica=replica, auditor=replica_auditor,
        )
        router = ReadRouter(
            url_of(primary_server), [url_of(replica_server)],
            check_interval=0.2, stats_ttl=0.05, retry_after=0.5,
        )
        router_server = build_router_server(router)
        threads = [serve(s) for s in (primary_server, replica_server, router_server)]
        router.start()
        yield {
            "primary": primary,
            "primary_server": primary_server,
            "replica": replica,
            "replica_auditor": replica_auditor,
            "replica_server": replica_server,
            "router_server": router_server,
        }
        router_server.shutdown()
        router_server.server_close()
        router.stop()
        replica_server.shutdown()
        replica_server.server_close()
        replica.stop()
        primary_server.shutdown()
        primary_server.server_close()
        stream.stop()
        for thread in threads:
            thread.join(timeout=10)

    def write_and_settle(self, fleet, start=6, count=2):
        primary = fleet["primary"]
        for step in range(count):
            payload = json.dumps(family_delta(start + step).to_json()).encode("utf-8")
            request = urllib.request.Request(
                url_of(fleet["router_server"], "/delta"),
                data=payload,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                assert response.status == 200
        wait_until(lambda: primary.state.wal_offset >= count)
        offset = primary.state.wal_offset
        wait_until(lambda: fleet["replica"].applied_offset >= offset)
        return offset

    def test_fleet_is_consistent_after_converged_writes(self, fleet):
        self.write_and_settle(fleet)
        status, payload = get_json(url_of(fleet["router_server"], "/fleet"))
        assert status == 200
        assert payload["role"] == "router"
        assert payload["consistent"] is True and payload["divergent"] == []
        roles = {node["role"] for node in payload["nodes"]}
        assert roles == {"primary", "replica"}
        digests = {node["digest"] for node in payload["nodes"]}
        assert digests == {format_digest(fleet["primary"].digests.digest)}
        assert all(node["match"] is True for node in payload["nodes"])

    def test_fleet_names_the_divergent_replica(self, fleet):
        self.write_and_settle(fleet)
        corrupt_with_maintainer(fleet["replica"].service)
        status, payload = get_json(url_of(fleet["router_server"], "/fleet"))
        assert status == 200
        assert payload["consistent"] is False
        assert payload["divergent"] == [url_of(fleet["replica_server"])]
        bad = [n for n in payload["nodes"] if n["role"] == "replica"]
        assert bad and bad[0]["match"] is False

    def test_router_relays_provenance_to_primary(self, fleet):
        trace = "fleet-trace-1"
        payload = json.dumps(family_delta(9).to_json()).encode("utf-8")
        request = urllib.request.Request(
            url_of(fleet["router_server"], "/delta"),
            data=payload,
            headers={"Content-Type": "application/json", "X-Request-Id": trace},
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            assert response.status == 200
        status, payload = get_json(
            url_of(fleet["router_server"], f"/provenance?trace={trace}")
        )
        assert status == 200
        assert payload["found"] and payload["role"] == "primary"
        assert "applied" in payload["timeline"]

    def doctor_args(self, fleet, as_json=True):
        argv = [
            "doctor",
            url_of(fleet["primary_server"]),
            "--replicas",
            url_of(fleet["replica_server"]),
            "--timeout",
            "60",
        ]
        if as_json:
            argv.append("--json")
        return build_parser().parse_args(argv)

    def test_doctor_reports_clean_fleet(self, fleet, capsys):
        self.write_and_settle(fleet)
        args = self.doctor_args(fleet)
        assert cmd_doctor(args) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["consistent"] is True
        assert {node["verdict"] for node in report["nodes"]} == {"ok"}
        assert report["target_offset"] == fleet["primary"].state.wal_offset

    def test_doctor_flags_exactly_the_corrupted_node(self, fleet, capsys):
        self.write_and_settle(fleet)
        entity, _counterpart = corrupt_without_maintainer(fleet["replica"].service)
        # Its own auditor notices within one cycle…
        mismatch = fleet["replica_auditor"].check_once()
        assert mismatch is not None
        status, health = get_json(url_of(fleet["replica_server"], "/healthz"))
        assert status == 200 and health["status"] == "degraded"
        # …and the doctor names the node and the first divergent pair.
        args = self.doctor_args(fleet)
        assert cmd_doctor(args) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["consistent"] is False
        verdicts = {node["role"]: node["verdict"] for node in report["nodes"]}
        assert verdicts == {"primary": "ok", "replica": "DIVERGED"}
        bad = [n for n in report["nodes"] if n["verdict"] == "DIVERGED"]
        assert bad[0]["url"] == url_of(fleet["replica_server"])
        pair = bad[0]["first_divergent_pair"]
        assert pair is not None and pair["left"] == entity.name
        assert pair["primary"]["probability"] != pair["node"]["probability"]

    def test_doctor_table_output(self, fleet, capsys):
        self.write_and_settle(fleet)
        corrupt_without_maintainer(fleet["replica"].service)
        args = self.doctor_args(fleet, as_json=False)
        assert cmd_doctor(args) == 1
        out = capsys.readouterr().out
        assert "DIVERGENCE DETECTED" in out
        assert "first divergent pair" in out


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------


class TestAuditCliFlags:
    def test_serve_and_replica_accept_audit_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--state-dir", "/tmp/state",
             "--audit-interval-ms", "250", "--audit-sample", "8"]
        )
        assert args.audit_interval_ms == 250 and args.audit_sample == 8
        args = parser.parse_args(["replica", "/tmp/state"])
        assert args.audit_interval_ms > 0  # on by default, every role

    def test_zero_interval_disables_the_auditor(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--state-dir", "/tmp/state", "--audit-interval-ms", "0"]
        )
        assert _build_auditor(args, lambda: None, role="primary") is None
        args = parser.parse_args(
            ["serve", "--state-dir", "/tmp/state", "--audit-interval-ms", "100"]
        )
        auditor = _build_auditor(args, lambda: None, role="primary")
        assert isinstance(auditor, StateAuditor)

    def test_doctor_parser_contract(self):
        parser = build_parser()
        args = parser.parse_args(
            ["doctor", "http://p:1", "--replicas", "http://r:2",
             "--replicas", "http://r:3", "--json"]
        )
        assert args.handler is cmd_doctor
        assert args.url == "http://p:1"
        assert args.replicas == ["http://r:2", "http://r:3"]
        assert args.json is True
