"""Shared fixtures.

Benchmark pairs and alignment runs are session-scoped: they are
deterministic (fixed seeds, stable hashing), so sharing them across
tests costs nothing in isolation and saves most of the suite's runtime.
"""

from __future__ import annotations

import pytest

from repro import OntologyBuilder, ParisConfig, align
from repro.datasets import (
    person_benchmark,
    restaurant_benchmark,
    yago_dbpedia_pair,
    yago_imdb_pair,
)


@pytest.fixture()
def tiny_pair():
    """Two 2-person ontologies with disjoint vocabularies."""
    left = (
        OntologyBuilder("left")
        .value("p1", "bornIn", "Tupelo")
        .value("p1", "name", "Elvis Presley")
        .value("p2", "bornIn", "Memphis")
        .value("p2", "name", "Johnny Cash")
        .type("p1", "L_Singer")
        .type("p2", "L_Singer")
        .build()
    )
    right = (
        OntologyBuilder("right")
        .value("x9", "birthPlace", "Tupelo")
        .value("x9", "label", "Elvis Presley")
        .value("x7", "birthPlace", "Memphis")
        .value("x7", "label", "Johnny Cash")
        .type("x9", "R_Musician")
        .type("x7", "R_Musician")
        .build()
    )
    return left, right


@pytest.fixture(scope="session")
def person_pair():
    """A small person benchmark (session-cached)."""
    return person_benchmark(num_persons=80, seed=42)


@pytest.fixture(scope="session")
def person_result(person_pair):
    return align(person_pair.ontology1, person_pair.ontology2)


@pytest.fixture(scope="session")
def restaurant_pair():
    return restaurant_benchmark(seed=7)


@pytest.fixture(scope="session")
def restaurant_result(restaurant_pair):
    return align(restaurant_pair.ontology1, restaurant_pair.ontology2)


@pytest.fixture(scope="session")
def kb_pair():
    """A scaled-down YAGO/DBpedia-like pair (session-cached)."""
    return yago_dbpedia_pair(num_persons=400, num_works=200, seed=2011)


@pytest.fixture(scope="session")
def kb_result(kb_pair):
    config = ParisConfig(max_iterations=4, convergence_threshold=0.0)
    return align(kb_pair.ontology1, kb_pair.ontology2, config)


@pytest.fixture(scope="session")
def movie_pair():
    return yago_imdb_pair(num_persons=400, num_movies=200, seed=1937)


@pytest.fixture(scope="session")
def movie_result(movie_pair):
    config = ParisConfig(max_iterations=4, convergence_threshold=0.0)
    return align(movie_pair.ontology1, movie_pair.ontology2, config)
