"""Unit tests for LiteralIndex and EquivalenceView."""

import pytest

from repro.core.literal_index import LiteralIndex
from repro.core.store import EquivalenceStore
from repro.core.view import EquivalenceView
from repro.literals import EditDistanceSimilarity, IdentitySimilarity
from repro.rdf.builder import OntologyBuilder
from repro.rdf.terms import Literal, Resource


@pytest.fixture()
def onto():
    return (
        OntologyBuilder("t")
        .value("a", "name", "Elvis")
        .value("b", "name", "Cash")
        .value("c", "name", "Elvis")  # duplicate value on purpose
        .build()
    )


class TestLiteralIndex:
    def test_exact_candidates(self, onto):
        index = LiteralIndex(onto, IdentitySimilarity())
        candidates = dict(index.candidates(Literal("Elvis")))
        assert candidates == {Literal("Elvis"): 1.0}

    def test_no_candidates(self, onto):
        index = LiteralIndex(onto, IdentitySimilarity())
        assert index.candidates(Literal("Presley")) == ()

    def test_fuzzy_candidates(self, onto):
        index = LiteralIndex(onto, EditDistanceSimilarity(max_distance=1))
        candidates = dict(index.candidates(Literal("Elvsi")))  # transposition = 2 ops
        # "Elvsi" -> "elvsi"; "Elvis" -> "elvis": distance 2, beyond max 1
        assert Literal("Elvis") not in candidates
        candidates = dict(index.candidates(Literal("Elvi")))
        assert Literal("Elvis") in candidates

    def test_memoization_returns_same_object(self, onto):
        index = LiteralIndex(onto, IdentitySimilarity())
        first = index.candidates(Literal("Elvis"))
        second = index.candidates(Literal("Elvis"))
        assert first is second

    def test_len_counts_bucket_entries(self, onto):
        index = LiteralIndex(onto, IdentitySimilarity())
        assert len(index) == 2  # "Elvis" and "Cash" buckets


class TestEquivalenceView:
    @pytest.fixture()
    def pair(self):
        onto1 = OntologyBuilder("o1").value("a", "name", "Elvis").build()
        onto2 = OntologyBuilder("o2").value("x", "label", "Elvis").build()
        return onto1, onto2

    def make_view(self, onto1, onto2, store=None):
        similarity = IdentitySimilarity()
        return EquivalenceView(
            store or EquivalenceStore(),
            LiteralIndex(onto2, similarity),
            LiteralIndex(onto1, similarity),
        )

    def test_literal_lookup_forward(self, pair):
        onto1, onto2 = pair
        view = self.make_view(onto1, onto2)
        assert dict(view.equivalents(Literal("Elvis"))) == {Literal("Elvis"): 1.0}

    def test_literal_lookup_reverse(self, pair):
        onto1, onto2 = pair
        view = self.make_view(onto1, onto2)
        assert dict(view.equivalents(Literal("Elvis"), reverse=True)) == {
            Literal("Elvis"): 1.0
        }

    def test_resource_lookup_uses_store(self, pair):
        onto1, onto2 = pair
        store = EquivalenceStore()
        store.set(Resource("a"), Resource("x"), 0.7)
        view = self.make_view(onto1, onto2, store)
        assert dict(view.equivalents(Resource("a"))) == {Resource("x"): 0.7}
        assert dict(view.equivalents(Resource("x"), reverse=True)) == {
            Resource("a"): 0.7
        }

    def test_prob_literal_pair(self, pair):
        onto1, onto2 = pair
        view = self.make_view(onto1, onto2)
        assert view.prob(Literal("Elvis"), Literal("Elvis")) == 1.0
        assert view.prob(Literal("Elvis"), Literal("Cash")) == 0.0

    def test_prob_mixed_kinds_is_zero(self, pair):
        onto1, onto2 = pair
        view = self.make_view(onto1, onto2)
        assert view.prob(Resource("a"), Literal("Elvis")) == 0.0
        assert view.prob(Literal("Elvis"), Resource("x")) == 0.0

    def test_prob_resource_pair(self, pair):
        onto1, onto2 = pair
        store = EquivalenceStore()
        store.set(Resource("a"), Resource("x"), 0.7)
        view = self.make_view(onto1, onto2, store)
        assert view.prob(Resource("a"), Resource("x")) == 0.7
        assert view.prob(Resource("a"), Resource("other")) == 0.0

    def test_mismatched_similarities_rejected(self, pair):
        onto1, onto2 = pair
        with pytest.raises(ValueError):
            EquivalenceView(
                EquivalenceStore(),
                LiteralIndex(onto2, IdentitySimilarity()),
                LiteralIndex(onto1, IdentitySimilarity()),
            )
