"""Streaming ingestion stack: WAL, coalescing batcher, sources, recovery.

Covers the pipeline bottom-up: delta composition (unit + the
coalescing hypothesis property — composed batches score-equal to
one-by-one application at 1e-9, both store directions), the
write-ahead log (durability, torn-tail truncation, corruption
detection, sequence recovery), the batcher (coalescing, admission
control, idempotent redelivery), the NDJSON tailer and spool sources,
the ``GET /stats`` / 429 HTTP surface, and the two headline
guarantees: stream-vs-POST equivalence and crash + snapshot + WAL
replay convergence.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aligner import align
from repro.core.config import ParisConfig
from repro.datasets.incremental import family_addition, family_pair, family_removal
from repro.rdf.terms import Relation, Resource
from repro.rdf.triples import Triple
from repro.service import AlignmentService, Delta, compose_deltas, load_state
from repro.service.server import build_server
from repro.service.stream import (
    DeltaBatcher,
    NdjsonFileTailer,
    QueueFullError,
    SpoolDirectorySource,
    StreamStack,
    WalCorruptionError,
    WalGapError,
    WriteAheadLog,
    make_source,
    replay_wal,
)

TOLERANCE = 1e-9


def family_delta(start: int, count: int = 1) -> Delta:
    add1, add2 = family_addition(start, count)
    return Delta(add1=tuple(add1), add2=tuple(add2))


def assert_stores_match(first, second, tolerance=TOLERANCE):
    mismatches = list(first.diff(second, tolerance))
    assert not mismatches, mismatches[:5]
    for left, right, probability in second.items():
        assert first.equals_of_right(right)[left] == pytest.approx(
            probability, abs=tolerance
        )


# ----------------------------------------------------------------------
# compose_deltas
# ----------------------------------------------------------------------


class TestComposeDeltas:
    T1 = Triple(Resource("a"), Relation("r"), Resource("b"))
    T2 = Triple(Resource("c"), Relation("r"), Resource("d"))

    def test_add_then_remove_nets_to_remove(self):
        composed = compose_deltas([Delta(add1=(self.T1,)), Delta(remove1=(self.T1,))])
        assert composed.add1 == ()
        assert composed.remove1 == (self.T1,)

    def test_remove_then_add_nets_to_add(self):
        composed = compose_deltas([Delta(remove1=(self.T1,)), Delta(add1=(self.T1,))])
        assert composed.add1 == (self.T1,)
        assert composed.remove1 == ()

    def test_within_one_delta_removes_fold_before_adds(self):
        # apply_delta applies removals before additions per side, so a
        # batch that removes and re-adds the same triple nets to add.
        composed = compose_deltas([Delta(add1=(self.T1,), remove1=(self.T1,))])
        assert composed.add1 == (self.T1,)

    def test_sides_are_independent(self):
        composed = compose_deltas(
            [Delta(add1=(self.T1,), add2=(self.T2,)), Delta(remove2=(self.T2,))]
        )
        assert composed.add1 == (self.T1,)
        assert composed.add2 == ()
        assert composed.remove2 == (self.T2,)

    def test_inverse_orientation_cancels_canonical(self):
        composed = compose_deltas(
            [Delta(add1=(self.T1,)), Delta(remove1=(self.T1.inverse,))]
        )
        assert composed.add1 == ()
        assert composed.remove1 == (self.T1,)

    def test_empty_and_duplicate_adds(self):
        composed = compose_deltas([Delta(), Delta(add1=(self.T1, self.T1))])
        assert composed == Delta(add1=(self.T1,))
        assert compose_deltas([]).is_empty()


class TestCoalescingEquivalence:
    """Satellite guarantee: for random delta sequences, applying the
    coalesced batch yields scores equal (1e-9) to applying the deltas
    one-by-one — both store directions."""

    BASE = 5

    @staticmethod
    def _delta_stream(seed: int, num_ops: int) -> list:
        """A deterministic random mix of family additions, marriage
        removals and re-adds, chopped into variable-size deltas."""
        import random

        rng = random.Random(seed)
        operations = []
        next_new = TestCoalescingEquivalence.BASE
        for _ in range(num_ops):
            kind = rng.choice(("add_family", "remove_marriage", "readd_marriage"))
            if kind == "add_family":
                add1, add2 = family_addition(next_new, 1)
                operations.append(Delta(add1=tuple(add1), add2=tuple(add2)))
                next_new += 1
            else:
                index = rng.randrange(0, TestCoalescingEquivalence.BASE)
                rem1, rem2 = family_removal([index])
                if kind == "remove_marriage":
                    operations.append(Delta(remove1=tuple(rem1), remove2=tuple(rem2)))
                else:
                    operations.append(Delta(add1=tuple(rem1), add2=tuple(rem2)))
        deltas = []
        position = 0
        while position < len(operations):
            width = rng.randint(1, 3)
            chunk = operations[position : position + width]
            deltas.append(
                Delta(
                    add1=sum((d.add1 for d in chunk), ()),
                    remove1=sum((d.remove1 for d in chunk), ()),
                    add2=sum((d.add2 for d in chunk), ()),
                    remove2=sum((d.remove2 for d in chunk), ()),
                )
            )
            position += width
        return deltas

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_ops=st.integers(min_value=2, max_value=8),
    )
    def test_coalesced_equals_one_by_one(self, seed, num_ops):
        deltas = self._delta_stream(seed, num_ops)
        left, right = family_pair(self.BASE)
        one_by_one = AlignmentService.cold_start(left, right, ParisConfig())
        for delta in deltas:
            one_by_one.apply_delta(delta)
        left2, right2 = family_pair(self.BASE)
        coalesced = AlignmentService.cold_start(left2, right2, ParisConfig())
        coalesced.apply_delta(compose_deltas(deltas))
        assert_stores_match(coalesced.state.store, one_by_one.state.store)
        assert (
            coalesced.state.ontology1.num_facts == one_by_one.state.ontology1.num_facts
        )
        assert (
            coalesced.state.ontology2.num_facts == one_by_one.state.ontology2.num_facts
        )


# ----------------------------------------------------------------------
# write-ahead log
# ----------------------------------------------------------------------


class TestWriteAheadLog:
    def test_append_replay_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.ndjson")
        first = family_delta(0)
        second = family_delta(1)
        assert wal.append(first, "s", 1) == 1
        assert wal.append(second, "s", 2) == 2
        records = list(wal.replay())
        assert [r.offset for r in records] == [1, 2]
        assert records[0].delta == first and records[1].delta == second
        assert all(r.source == "s" for r in records)
        assert list(wal.replay(after_offset=1))[0].offset == 2
        wal.close()

    def test_reopen_recovers_offset_and_seqs(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.ndjson")
        wal.append(family_delta(0), "alpha", 3)
        wal.append(family_delta(1), "beta", 7)
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal.ndjson")
        assert reopened.offset == 2
        assert reopened.last_seqs == {"alpha": 3, "beta": 7}
        reopened.close()

    def test_torn_tail_is_truncated_and_appendable(self, tmp_path):
        path = tmp_path / "wal.ndjson"
        wal = WriteAheadLog(path)
        wal.append(family_delta(0), "s", 1)
        wal.close()
        good_size = path.stat().st_size
        with path.open("a", encoding="utf-8") as stream:
            stream.write('{"offset": 2, "source": "s", "del')  # crash mid-append
        reopened = WriteAheadLog(path)
        assert reopened.offset == 1
        assert path.stat().st_size == good_size
        assert reopened.append(family_delta(1), "s", 2) == 2
        assert len(list(reopened.replay())) == 2
        reopened.close()

    def test_mid_log_corruption_raises(self, tmp_path):
        path = tmp_path / "wal.ndjson"
        wal = WriteAheadLog(path)
        wal.append(family_delta(0), "s", 1)
        wal.append(family_delta(1), "s", 2)
        wal.close()
        lines = path.read_text().splitlines(keepends=True)
        path.write_text(lines[0][: len(lines[0]) // 2] + "garbage\n" + lines[1])
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(path)

    def test_read_only_never_mutates(self, tmp_path):
        path = tmp_path / "wal.ndjson"
        wal = WriteAheadLog(path)
        wal.append(family_delta(0), "s", 1)
        wal.close()
        with path.open("a", encoding="utf-8") as stream:
            stream.write("torn")
        size_before = path.stat().st_size
        readonly = WriteAheadLog(path, read_only=True)
        assert readonly.offset == 1
        assert len(list(readonly.replay())) == 1
        assert path.stat().st_size == size_before  # torn tail untouched
        with pytest.raises(RuntimeError):
            readonly.append(family_delta(1), "s", 2)
        # And a read-only open of a missing file creates nothing.
        missing = WriteAheadLog(tmp_path / "absent.ndjson", read_only=True)
        assert missing.offset == 0 and not (tmp_path / "absent.ndjson").exists()


class TestWalSegments:
    """Segment rotation, compaction and group commit."""

    def fill(self, wal, count, start=0):
        for step in range(count):
            wal.append(family_delta(start + step), "s", start + step + 1)

    def test_rotation_seals_segments_and_replay_walks_them_in_order(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.ndjson", segment_bytes=600)
        self.fill(wal, 6)
        sealed = wal.sealed_segments()
        assert len(sealed) >= 2
        # Sealed names carry their first offset; ranges are contiguous.
        assert sealed[0][0] == 1
        assert [record.offset for record in wal.replay()] == [1, 2, 3, 4, 5, 6]
        assert (tmp_path / "wal.ndjson").exists()  # the active segment
        wal.close()
        # Reopen recovers offset and seqs across all segments.
        reopened = WriteAheadLog(tmp_path / "wal.ndjson", segment_bytes=600)
        assert reopened.offset == 6
        assert reopened.last_seqs == {"s": 6}
        reopened.close()

    def test_replay_wal_applies_across_segments(self, tmp_path):
        """The startup catch-up walks segments in order, transparently."""
        left, right = family_pair(6)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        wal = WriteAheadLog(tmp_path / "wal.ndjson", segment_bytes=500)
        self.fill(wal, 4, start=6)
        assert len(wal.sealed_segments()) >= 1
        assert replay_wal(service, wal, max_batch=2) == 4
        assert service.state.wal_offset == 4
        assert service.pair("p9a", "q9a")["probability"] > 0.9
        wal.close()

    def test_torn_tail_truncation_only_in_the_active_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.ndjson", segment_bytes=600)
        self.fill(wal, 6)
        wal.close()
        # Torn tail in the ACTIVE segment: truncated away on reopen.
        active = tmp_path / "wal.ndjson"
        good_size = active.stat().st_size
        with active.open("a", encoding="utf-8") as stream:
            stream.write('{"offset": 99, "sour')
        reopened = WriteAheadLog(active, segment_bytes=600)
        assert reopened.offset == 6
        assert active.stat().st_size == good_size
        reopened.close()
        # Torn tail in a SEALED segment is corruption, not recovery:
        # sealing fsyncs before the rename, so a sealed file can only
        # lose its newline through real damage.
        sealed_path = reopened.sealed_segments()[0][1]
        torn = sealed_path.read_bytes()[:-10]
        sealed_path.write_bytes(torn)
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(active, segment_bytes=600)

    def test_compaction_drops_covered_segments_only(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.ndjson", segment_bytes=600)
        self.fill(wal, 6)
        size_before = wal.size_bytes()
        segments_before = len(wal.sealed_segments())
        reclaimed, deleted = wal.compact(4)
        assert reclaimed > 0 and deleted
        assert wal.size_bytes() == size_before - reclaimed
        assert len(wal.sealed_segments()) < segments_before
        # The suffix beyond the covered offset is fully intact...
        assert [record.offset for record in wal.replay(after_offset=4)] == [5, 6]
        # ...but history below the oldest retained record is gone.
        with pytest.raises(WalGapError):
            list(wal.replay(after_offset=0))
        # Appending and reopening after compaction keeps offsets
        # monotonic (the snapshot contract depends on it).
        assert wal.append(family_delta(6), "s", 7) == 7
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal.ndjson", segment_bytes=600)
        assert reopened.offset == 7
        reopened.close()

    def test_compaction_never_orphans_the_current_offset(self, tmp_path):
        """With an empty active file, the newest sealed segment
        survives even a covering compaction — deleting it would reset
        offsets to 0 on restart and break the snapshot contract."""
        wal = WriteAheadLog(tmp_path / "wal.ndjson", segment_bytes=1)
        self.fill(wal, 2)
        # segment_bytes=1: every append rotates first, so the active
        # file holds exactly the newest record.  Rotate it out manually
        # by appending nothing: instead, compact with the active file
        # holding record 2 and covered=2 — segment 1 goes, active stays.
        reclaimed, deleted = wal.compact(2)
        assert [base for base, _path in wal.sealed_segments()] == []
        assert wal.offset == 2
        assert [record.offset for record in wal.replay(after_offset=1)] == [2]
        wal.close()

    def test_read_only_reader_follows_a_live_writer_across_rotations(self, tmp_path):
        writer = WriteAheadLog(tmp_path / "wal.ndjson", segment_bytes=500)
        self.fill(writer, 3)
        reader = WriteAheadLog(tmp_path / "wal.ndjson", read_only=True)
        assert [record.offset for record in reader.replay()] == [1, 2, 3]
        assert reader.current_offset() == 3
        self.fill(writer, 3, start=3)  # more rotations under the reader
        assert [record.offset for record in reader.replay(after_offset=3)] == [4, 5, 6]
        assert reader.current_offset() == 6
        writer.close()

    def test_writer_walk_recovers_from_rotation_mid_replay(self, tmp_path):
        """The GET /wal handler replays the *writer's own* live log
        while the batcher thread appends and rotates: a rotation that
        lands between the walker's segment listing and its read of the
        active file must be re-discovered, not surface as corruption."""
        wal = WriteAheadLog(tmp_path / "wal.ndjson", segment_bytes=1)
        for step in range(3):
            wal.append(family_delta(step), "s", step + 1)
        replay = wal.replay()
        # Consume the sealed records 1..2; record 3 still sits in the
        # active file the walker has not opened yet.
        assert next(replay).offset == 1
        assert next(replay).offset == 2
        # Rotation outruns the walker: the active file it expected to
        # hold record 3 now holds record 5.
        wal.append(family_delta(3), "s", 4)
        wal.append(family_delta(4), "s", 5)
        assert [record.offset for record in replay] == [3, 4, 5]
        wal.close()

    def test_vanished_sealed_segment_is_a_gap_not_a_skip(self, tmp_path, monkeypatch):
        """A compactor deleting a sealed segment between a reader's
        listing and its read must raise WalGapError — silently yielding
        nothing would let a replica skip the segment's offset range and
        diverge while reporting itself caught up."""
        wal = WriteAheadLog(tmp_path / "wal.ndjson", segment_bytes=1)
        for step in range(3):
            wal.append(family_delta(step), "s", step + 1)
        reader = WriteAheadLog(tmp_path / "wal.ndjson", read_only=True)
        stale_listing = reader.sealed_segments()
        first_path = stale_listing[0][1]
        monkeypatch.setattr(reader, "sealed_segments", lambda: stale_listing)
        first_path.unlink()  # the racing compactor wins
        with pytest.raises(WalGapError):
            list(reader.replay(after_offset=0))
        wal.close()

    def test_duplicate_ack_waits_for_the_original_fsync(self, tmp_path):
        """A redelivery may be acked as duplicate only once the
        original record is durable — the ack promises replayability."""
        left, right = family_pair(6)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        wal = WriteAheadLog(tmp_path / "wal.ndjson", group_commit=0.01)
        # The original submitter appended but has not fsync'd yet (it
        # is still inside its group-commit window).
        offset = wal.append(family_delta(6), "w", 1, sync=False)
        assert wal.durable_offset < offset
        batcher = DeltaBatcher(service, wal=wal)
        assert batcher.submit(family_delta(6), source="w", seq=1) is None
        assert wal.durable_offset >= offset  # the ack implied durability
        batcher.close()
        wal.close()

    def test_group_commit_preserves_ack_after_fsync(self, tmp_path):
        """Per-delta durability semantics: an unsynced append is not
        yet durable, sync makes it so, and the batcher never acks (nor
        applies) a delta before its offset is durable."""
        wal = WriteAheadLog(tmp_path / "wal.ndjson", group_commit=0.01)
        offset = wal.append(family_delta(0), "s", 1, sync=False)
        assert wal.durable_offset < offset  # buffered, not yet durable
        wal.sync(offset)
        assert wal.durable_offset == offset
        # Through the batcher: submit returns only after the fsync.
        left, right = family_pair(6)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        batcher = DeltaBatcher(service, wal=wal, max_lag=0.02).start()
        batcher.submit(family_delta(6), source="w", seq=1)
        assert wal.durable_offset >= 2  # ack implies durable
        assert batcher.flush(timeout=60)
        assert service.state.wal_offset == 2
        batcher.close()
        # And the record really is on disk, parseable by a fresh open.
        recovered = WriteAheadLog(tmp_path / "wal.ndjson")
        assert recovered.offset == 2
        recovered.close()

    def test_group_commit_shares_fsyncs_across_writers(self, tmp_path):
        """Batched queued records fsync once: concurrent syncs elect a
        leader whose single fsync covers every buffered record."""
        wal = WriteAheadLog(tmp_path / "wal.ndjson", group_commit=0.05)
        offsets = [
            wal.append(family_delta(step), "s", step + 1, sync=False)
            for step in range(8)
        ]
        before = wal.fsyncs
        threads = [
            threading.Thread(target=wal.sync, args=(offset,)) for offset in offsets
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert wal.durable_offset == 8
        # One leader fsync covered all 8 records (a second can sneak in
        # if a leader finishes before the last waiter arrives, but the
        # whole point is fsyncs << records).
        assert wal.fsyncs - before < len(offsets) / 2
        wal.close()


# ----------------------------------------------------------------------
# batcher
# ----------------------------------------------------------------------


class TestDeltaBatcher:
    @pytest.fixture()
    def service(self):
        left, right = family_pair(6)
        return AlignmentService.cold_start(left, right, ParisConfig())

    def test_coalesces_queued_deltas_into_one_batch(self, service):
        batcher = DeltaBatcher(service, max_batch=8, max_lag=0.2)
        for step in range(3):
            batcher.submit(family_delta(6 + step), source="t", seq=step + 1)
        batcher.start()
        assert batcher.flush(timeout=60)
        stats = batcher.stats()
        assert stats["accepted"] == 3
        assert stats["batches"] == 1  # one warm pass absorbed all three
        assert stats["coalesced_deltas"] == 3
        assert service.deltas_applied == 1
        assert service.pair("p8a", "q8a")["probability"] > 0.9
        batcher.close()

    def test_wait_returns_the_batch_report(self, service):
        batcher = DeltaBatcher(service, max_batch=4, max_lag=0.01).start()
        report = batcher.submit(family_delta(6), wait=True, timeout=60)
        assert report is not None and report.converged
        assert report.version == 1
        batcher.close()

    def test_queue_full_rejects_before_wal(self, service, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.ndjson")
        batcher = DeltaBatcher(service, wal=wal, max_queue=2, max_lag=0.01)
        batcher.submit(family_delta(6))
        batcher.submit(family_delta(7))
        with pytest.raises(QueueFullError) as excinfo:
            batcher.submit(family_delta(8))
        assert excinfo.value.retry_after > 0
        assert batcher.stats()["rejected"] == 1
        assert wal.offset == 2  # the rejected delta never reached the log
        batcher.start()
        assert batcher.flush(timeout=60)
        assert service.state.wal_offset == 2
        batcher.close()

    def test_duplicate_seq_dropped_idempotently(self, service):
        batcher = DeltaBatcher(service, max_lag=0.01).start()
        first = batcher.submit(family_delta(6), source="s", seq=5, wait=True)
        assert first is not None
        facts = service.state.ontology1.num_facts
        assert batcher.submit(family_delta(6), source="s", seq=5, wait=True) is None
        assert batcher.submit(family_delta(6), source="s", seq=4, wait=True) is None
        assert service.state.ontology1.num_facts == facts
        assert batcher.stats()["duplicates"] == 2
        # Distinct sources have independent sequence spaces.
        assert batcher.submit(family_delta(7), source="other", seq=5, wait=True)
        batcher.close()

    def test_invalid_delta_rejected_without_consuming_anything(self, service):
        from repro.rdf.vocabulary import RDFS_SUBPROPERTYOF

        batcher = DeltaBatcher(service)
        bad = Delta(add1=(Triple(Resource("a"), RDFS_SUBPROPERTYOF, Resource("b")),))
        with pytest.raises(ValueError):
            batcher.submit(bad)
        assert batcher.stats()["accepted"] == 0
        batcher.close()

    def test_on_batch_applied_fires_once_per_batch(self, service):
        """The snapshot-policy hook runs per applied *batch*, and its
        failures never fail the batch itself."""
        reports = []

        def hook(report):
            reports.append(report)
            raise OSError("disk full under the snapshot")

        batcher = DeltaBatcher(service, max_batch=8, max_lag=0.2, on_batch_applied=hook)
        for step in range(3):
            batcher.submit(family_delta(6 + step))
        batcher.start()
        assert batcher.flush(timeout=60)
        assert len(reports) == 1  # one batch, one hook call
        assert reports[0].version == 1
        # The failing hook did not poison anything: waiters still get
        # reports and the engine keeps serving.
        assert batcher.submit(family_delta(9), wait=True, timeout=60).converged
        assert len(reports) == 2
        batcher.close()

    def test_engine_failure_reaches_waiters(self, service, monkeypatch):
        from repro.core.aligner import ParisAligner

        def explode(*_args, **_kwargs):
            raise OSError("worker pool died")

        monkeypatch.setattr(ParisAligner, "warm_align", explode)
        batcher = DeltaBatcher(service, max_lag=0.01).start()
        with pytest.raises(OSError):
            batcher.submit(family_delta(6), wait=True, timeout=60)
        assert service.poisoned is not None
        # Later batches fail fast on the fail-stop check.
        with pytest.raises(RuntimeError):
            batcher.submit(family_delta(7), wait=True, timeout=60)
        batcher.close()

    def test_failed_batch_without_wal_does_not_ack_retries_as_duplicates(
        self, service, monkeypatch
    ):
        """Without a WAL there is nothing to replay a failed batch
        from, so its sequence numbers must not raise the redelivery
        high-water mark: a retry is new work, not a duplicate."""
        from repro.core.aligner import ParisAligner

        real_warm_align = ParisAligner.warm_align

        def explode(*_args, **_kwargs):
            raise OSError("worker pool died")

        monkeypatch.setattr(ParisAligner, "warm_align", explode)
        batcher = DeltaBatcher(service, max_lag=0.01).start()
        with pytest.raises(OSError):
            batcher.submit(family_delta(6), source="w", seq=1, wait=True, timeout=60)
        # "Heal" the engine (a stand-in for the restart a real
        # deployment would do) and retry the same (source, seq).
        monkeypatch.setattr(ParisAligner, "warm_align", real_warm_align)
        service.poisoned = None
        report = batcher.submit(family_delta(6), source="w", seq=1, wait=True, timeout=60)
        assert report is not None  # admitted and applied, NOT acked as duplicate
        assert batcher.stats()["duplicates"] == 0
        # ...and only after that success does the same seq deduplicate.
        assert batcher.submit(family_delta(6), source="w", seq=1, wait=True) is None
        assert batcher.stats()["duplicates"] == 1
        batcher.close()

    def test_wal_backed_failed_batch_still_acks_duplicates(
        self, service, tmp_path, monkeypatch
    ):
        """With a WAL the delta is durable at admission (restart
        replays it), so acking the retry as a duplicate is correct."""
        from repro.core.aligner import ParisAligner

        def explode(*_args, **_kwargs):
            raise OSError("worker pool died")

        monkeypatch.setattr(ParisAligner, "warm_align", explode)
        wal = WriteAheadLog(tmp_path / "wal.ndjson")
        batcher = DeltaBatcher(service, wal=wal, max_lag=0.01).start()
        with pytest.raises(OSError):
            batcher.submit(family_delta(6), source="w", seq=1, wait=True, timeout=60)
        assert batcher.submit(family_delta(6), source="w", seq=1, wait=True) is None
        assert wal.offset == 1  # the delta is in the log for replay
        batcher.close()


# ----------------------------------------------------------------------
# sources
# ----------------------------------------------------------------------


class TestSources:
    @pytest.fixture()
    def service(self):
        left, right = family_pair(6)
        return AlignmentService.cold_start(left, right, ParisConfig())

    @staticmethod
    def wait_until(condition, seconds=30.0):
        deadline = time.monotonic() + seconds
        while not condition():
            assert time.monotonic() < deadline, "condition never became true"
            time.sleep(0.05)

    def test_tailer_ingests_appended_lines(self, service, tmp_path):
        batcher = DeltaBatcher(service, max_lag=0.02).start()
        watch = tmp_path / "deltas.ndjson"
        tailer = NdjsonFileTailer(batcher, watch, poll_interval=0.02).start()
        try:
            with watch.open("a", encoding="utf-8") as stream:
                stream.write(json.dumps(family_delta(6).to_json()) + "\n")
                stream.write("\n")  # blank lines are skipped
                stream.write("this is not json\n")  # counted, not fatal
                stream.write(
                    json.dumps({"delta": family_delta(7).to_json(), "seq": 2}) + "\n"
                )
                stream.write('{"left": {"add": [')  # partial line: must wait
            self.wait_until(lambda: tailer.ingested >= 2)
            assert batcher.flush(timeout=60)
            assert service.pair("p6a", "q6a")["probability"] > 0.9
            assert service.pair("p7a", "q7a")["probability"] > 0.9
            assert tailer.decode_errors == 1
            assert tailer.ingested == 2  # the partial line was not consumed
            # Completing the partial line gets it ingested.
            with watch.open("a", encoding="utf-8") as stream:
                stream.write(
                    json.dumps(family_delta(8).to_json())[len('{"left": {"add": [') :]
                    + "\n"
                )
            self.wait_until(lambda: tailer.ingested >= 3)
            assert batcher.flush(timeout=60)
            assert service.pair("p8a", "q8a")["probability"] > 0.9
        finally:
            tailer.stop()
            batcher.close()

    def test_spool_directory_ingests_and_renames(self, service, tmp_path):
        spool = tmp_path / "spool"
        spool.mkdir()
        batcher = DeltaBatcher(service, max_lag=0.02).start()
        source = SpoolDirectorySource(batcher, spool, poll_interval=0.02).start()
        try:
            target = spool / "batch-1.ndjson"
            staged = tmp_path / "batch-1.ndjson.tmp"
            with staged.open("w", encoding="utf-8") as stream:
                for step in range(2):
                    stream.write(json.dumps(family_delta(6 + step).to_json()) + "\n")
            staged.rename(target)  # atomic placement, as the contract requires
            self.wait_until(lambda: source.files_done >= 1)
            assert batcher.flush(timeout=60)
            assert not target.exists()
            assert (spool / "batch-1.ndjson.done").exists()
            assert service.pair("p7a", "q7a")["probability"] > 0.9
        finally:
            source.stop()
            batcher.close()

    def test_tailer_rotation_does_not_drop_new_data(self, service, tmp_path):
        """A rotated (shrunk) watch file holds *new* deltas: the
        tailer's running record counter keeps its implicit sequence
        numbers above the ingested high-water mark, so the batcher
        must not drop them as redeliveries."""
        batcher = DeltaBatcher(service, max_lag=0.02).start()
        watch = tmp_path / "deltas.ndjson"
        watch.write_text(
            json.dumps(family_delta(6).to_json())
            + "\n"
            + json.dumps(family_delta(7).to_json())
            + "\n",
            encoding="utf-8",
        )
        tailer = NdjsonFileTailer(batcher, watch, poll_interval=0.02).start()
        try:
            self.wait_until(lambda: tailer.ingested >= 2)
            # Rotate: truncate and write one *different* delta.
            watch.write_text(
                json.dumps(family_delta(8).to_json()) + "\n", encoding="utf-8"
            )
            self.wait_until(lambda: tailer.ingested >= 3)
            assert batcher.flush(timeout=60)
            assert batcher.stats()["duplicates"] == 0
            assert service.pair("p8a", "q8a")["probability"] > 0.9
        finally:
            tailer.stop()
            batcher.close()

    def test_spool_filename_reuse_is_new_data(self, service, tmp_path):
        """A second spool file reusing a processed name is new data
        (namespace keyed on the inode), not a redelivery to drop."""
        spool = tmp_path / "spool"
        spool.mkdir()
        batcher = DeltaBatcher(service, max_lag=0.02).start()
        source = SpoolDirectorySource(batcher, spool, poll_interval=0.02).start()
        try:
            for round_index in range(2):
                staged = tmp_path / "batch.ndjson.tmp"
                staged.write_text(
                    json.dumps(family_delta(6 + round_index).to_json()) + "\n",
                    encoding="utf-8",
                )
                staged.rename(spool / "batch.ndjson")
                self.wait_until(lambda: source.files_done >= round_index + 1)
            assert batcher.flush(timeout=60)
            assert batcher.stats()["duplicates"] == 0
            assert service.pair("p6a", "q6a")["probability"] > 0.9
            assert service.pair("p7a", "q7a")["probability"] > 0.9
        finally:
            source.stop()
            batcher.close()

    def test_unapplicable_delta_line_skips_without_killing_the_source(
        self, service, tmp_path
    ):
        """A line that decodes fine but fails engine validation (e.g.
        a URI with a space) must be counted and skipped — not kill the
        tailer thread and wedge everything behind it."""
        batcher = DeltaBatcher(service, max_lag=0.02).start()
        watch = tmp_path / "deltas.ndjson"
        bad = {"left": {"add": [{"subject": "a b", "relation": "r", "object": "c"}]}}
        with watch.open("w", encoding="utf-8") as stream:
            stream.write(json.dumps(bad) + "\n")
            stream.write(json.dumps(family_delta(6).to_json()) + "\n")
        tailer = NdjsonFileTailer(batcher, watch, poll_interval=0.02).start()
        try:
            self.wait_until(lambda: tailer.ingested >= 1)
            assert batcher.flush(timeout=60)
            assert tailer.decode_errors == 1
            assert service.pair("p6a", "q6a")["probability"] > 0.9
        finally:
            tailer.stop()
            batcher.close()

    def test_same_basename_watch_files_do_not_collide(self, service, tmp_path):
        """Two watched files sharing a basename (repeatable --watch)
        must not share a sequence-dedup namespace."""
        batcher = DeltaBatcher(service, max_lag=0.02).start()
        first_dir, second_dir = tmp_path / "a", tmp_path / "b"
        first_dir.mkdir()
        second_dir.mkdir()
        (first_dir / "deltas.ndjson").write_text(
            json.dumps(family_delta(6).to_json()) + "\n", encoding="utf-8"
        )
        (second_dir / "deltas.ndjson").write_text(
            json.dumps(family_delta(7).to_json()) + "\n", encoding="utf-8"
        )
        tailers = [
            NdjsonFileTailer(batcher, path / "deltas.ndjson", poll_interval=0.02).start()
            for path in (first_dir, second_dir)
        ]
        try:
            self.wait_until(lambda: sum(t.ingested for t in tailers) >= 2)
            assert batcher.flush(timeout=60)
            assert batcher.stats()["duplicates"] == 0
            assert service.pair("p6a", "q6a")["probability"] > 0.9
            assert service.pair("p7a", "q7a")["probability"] > 0.9
        finally:
            for tailer in tailers:
                tailer.stop()
            batcher.close()

    def test_mixed_explicit_and_implicit_seq_lines(self, service, tmp_path):
        """A large explicit seq envelope must not swallow later bare
        lines (separate sequence namespaces per form)."""
        batcher = DeltaBatcher(service, max_lag=0.02).start()
        watch = tmp_path / "deltas.ndjson"
        with watch.open("w", encoding="utf-8") as stream:
            stream.write(
                json.dumps({"delta": family_delta(6).to_json(), "seq": 100}) + "\n"
            )
            stream.write(json.dumps(family_delta(7).to_json()) + "\n")
        tailer = NdjsonFileTailer(batcher, watch, poll_interval=0.02).start()
        try:
            self.wait_until(lambda: tailer.ingested >= 2)
            assert batcher.flush(timeout=60)
            assert batcher.stats()["duplicates"] == 0
            assert service.pair("p7a", "q7a")["probability"] > 0.9
        finally:
            tailer.stop()
            batcher.close()

    def test_tailer_rename_rotation_with_fast_growth(self, service, tmp_path):
        """Rotation by rename + recreate must be detected even when
        the replacement file already grew past the old byte position
        (inode check, not just shrinkage)."""
        batcher = DeltaBatcher(service, max_lag=0.02).start()
        watch = tmp_path / "deltas.ndjson"
        watch.write_text(json.dumps(family_delta(6).to_json()) + "\n", encoding="utf-8")
        tailer = NdjsonFileTailer(batcher, watch, poll_interval=0.05)
        tailer._poll()  # deterministic: consume the first incarnation
        assert tailer.ingested == 1
        # Rotate: move the old file away, recreate *larger* than the
        # consumed position before the next poll.
        watch.rename(tmp_path / "deltas.ndjson.1")
        watch.write_text(
            json.dumps(family_delta(7).to_json())
            + "\n"
            + json.dumps(family_delta(8).to_json())
            + "\n",
            encoding="utf-8",
        )
        assert watch.stat().st_size > tailer._position
        tailer._poll()
        assert tailer.ingested == 3  # nothing lost, nothing garbled
        assert tailer.decode_errors == 0
        assert batcher.flush(timeout=60)
        assert batcher.stats()["duplicates"] == 0
        assert service.pair("p7a", "q7a")["probability"] > 0.9
        assert service.pair("p8a", "q8a")["probability"] > 0.9
        batcher.close()

    def test_spool_bad_utf8_file_skips_without_killing_the_source(
        self, service, tmp_path
    ):
        """A spool file with undecodable bytes must be counted/skipped
        line-wise and finished, not kill the source thread."""
        spool = tmp_path / "spool"
        spool.mkdir()
        batcher = DeltaBatcher(service, max_lag=0.02).start()
        staged = tmp_path / "bad.ndjson.tmp"
        with staged.open("wb") as stream:
            stream.write(b"\xff\xfe not utf-8 \xff\n")
            stream.write(json.dumps(family_delta(6).to_json()).encode("utf-8") + b"\n")
        staged.rename(spool / "bad.ndjson")
        source = SpoolDirectorySource(batcher, spool, poll_interval=0.02).start()
        try:
            self.wait_until(lambda: source.files_done >= 1)
            assert batcher.flush(timeout=60)
            assert source.decode_errors == 1
            assert source.ingested == 1
            assert (spool / "bad.ndjson.done").exists()
            assert service.pair("p6a", "q6a")["probability"] > 0.9
        finally:
            source.stop()
            batcher.close()

    def test_tailer_consumes_backlog_larger_than_one_chunk(self, service, tmp_path):
        """A pre-existing backlog bigger than READ_CHUNK is consumed
        across bounded reads in one poll — nothing skipped, nothing
        re-read unboundedly."""
        batcher = DeltaBatcher(service, max_queue=4096, max_lag=0.05).start()
        watch = tmp_path / "deltas.ndjson"
        deltas = [family_delta(6), family_delta(7), family_delta(8)]
        lines = [json.dumps(delta.to_json()) + "\n" for delta in deltas]
        watch.write_text("".join(lines), encoding="utf-8")
        tailer = NdjsonFileTailer(batcher, watch, poll_interval=0.05)
        # Force multiple chunk reads per poll: smaller than one line.
        tailer.READ_CHUNK = len(lines[0]) // 3
        tailer._poll()
        assert tailer.ingested == 3
        assert tailer._position == watch.stat().st_size
        assert batcher.flush(timeout=60)
        assert service.pair("p8a", "q8a")["probability"] > 0.9
        batcher.close()

    def test_make_source_picks_by_path_kind(self, service, tmp_path):
        batcher = DeltaBatcher(service)
        directory = tmp_path / "spool"
        directory.mkdir()
        assert isinstance(make_source(batcher, directory), SpoolDirectorySource)
        assert isinstance(
            make_source(batcher, tmp_path / "not-there-yet.ndjson"), NdjsonFileTailer
        )
        batcher.close()

    def test_tailer_redelivery_after_restart_is_idempotent(self, service, tmp_path):
        """A restarted tailer re-reads the file from byte 0; the WAL's
        recovered per-source sequence numbers drop every replayed line."""
        wal = WriteAheadLog(tmp_path / "wal.ndjson")
        batcher = DeltaBatcher(service, wal=wal, max_lag=0.02).start()
        watch = tmp_path / "deltas.ndjson"
        watch.write_text(json.dumps(family_delta(6).to_json()) + "\n", encoding="utf-8")
        tailer = NdjsonFileTailer(batcher, watch, poll_interval=0.02).start()
        self.wait_until(lambda: tailer.ingested >= 1)
        assert batcher.flush(timeout=60)
        tailer.stop()
        batcher.close()
        assert wal.offset == 1
        # "Restart": fresh batcher over the same WAL, fresh tailer.
        batcher2 = DeltaBatcher(
            service, wal=WriteAheadLog(tmp_path / "wal.ndjson"), max_lag=0.02
        ).start()
        tailer2 = NdjsonFileTailer(batcher2, watch, poll_interval=0.02).start()
        try:
            self.wait_until(lambda: batcher2.stats()["duplicates"] >= 1)
            assert batcher2.stats()["accepted"] == 0
        finally:
            tailer2.stop()
            batcher2.close()


# ----------------------------------------------------------------------
# HTTP surface
# ----------------------------------------------------------------------


class TestHttpStreaming:
    @pytest.fixture()
    def stack(self, tmp_path):
        left, right = family_pair(5)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        wal = WriteAheadLog(tmp_path / "wal.ndjson")
        batcher = DeltaBatcher(service, wal=wal, max_batch=8, max_lag=0.02)
        stream = StreamStack(batcher=batcher, wal=wal).start()
        server = build_server(
            service, "127.0.0.1", 0, state_dir=tmp_path, stream=stream, snapshot_every=0
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server, service
        server.shutdown()
        server.server_close()
        stream.stop()
        thread.join(timeout=10)

    @staticmethod
    def url(server, path):
        host, port = server.server_address[:2]
        return f"http://{host}:{port}{path}"

    def get_json(self, server, path):
        with urllib.request.urlopen(self.url(server, path), timeout=30) as response:
            return json.load(response)

    def post_json(self, server, path, payload):
        request = urllib.request.Request(
            self.url(server, path),
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            return json.load(response)

    def test_stats_exposes_queue_wal_and_work(self, stack):
        server, service = stack
        stats = self.get_json(server, "/stats")
        assert stats["wal_offset"] == 0
        assert stats["ingest"]["queue_depth"] == 0
        report = self.post_json(server, "/delta", family_delta(5).to_json())
        assert report["converged"]
        stats = self.get_json(server, "/stats")
        assert stats["wal_offset"] == 1
        assert stats["ingest"]["wal_appended"] == 1
        assert stats["ingest"]["accepted"] == 1
        assert stats["pairs_touched_total"] > 0
        assert stats["deltas_applied"] == 1

    def test_duplicate_post_acknowledged(self, stack):
        server, service = stack
        payload = family_delta(5).to_json()
        first = self.post_json(server, "/delta?source=writer&seq=1", payload)
        assert first["converged"]
        second = self.post_json(server, "/delta?source=writer&seq=1", payload)
        assert second == {"duplicate": True, "source": "writer", "seq": 1}
        assert self.get_json(server, "/stats")["ingest"]["duplicates"] == 1

    def test_bad_seq_400(self, stack):
        server, _service = stack
        with pytest.raises(urllib.error.HTTPError) as error:
            self.post_json(server, "/delta?seq=abc", family_delta(5).to_json())
        assert error.value.code == 400

    def test_overflow_answers_429_with_retry_after(self, stack):
        server, service = stack
        stream = server.stream
        stream.batcher.max_queue = 0  # admission rejects everything
        try:
            with pytest.raises(urllib.error.HTTPError) as error:
                self.post_json(server, "/delta", family_delta(5).to_json())
            assert error.value.code == 429
            assert float(error.value.headers["Retry-After"]) > 0
            body = json.load(error.value)
            assert "queue is full" in body["error"]
        finally:
            stream.batcher.max_queue = 8

    def test_build_server_installs_batch_snapshot_policy(self, tmp_path):
        """snapshot_every must keep working for any build_server caller
        with a stream — the policy moves to the batcher hook (once per
        applied batch), it does not silently vanish."""
        from repro.service import latest_version

        left, right = family_pair(3)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        batcher = DeltaBatcher(service, max_batch=8, max_lag=0.02)
        stream = StreamStack(batcher=batcher).start()
        server = build_server(
            service, "127.0.0.1", 0, state_dir=tmp_path, stream=stream, snapshot_every=1
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            assert batcher.on_batch_applied is not None
            report = self.post_json(server, "/delta", family_delta(3).to_json())
            assert report["version"] == 1
            assert batcher.flush(timeout=60)
            assert latest_version(tmp_path) == 1  # snapshotted, once, by the hook
        finally:
            server.shutdown()
            server.server_close()
            stream.stop()
            thread.join(timeout=10)
        left, right = family_pair(3)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        server = build_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            # Without a stream stack /stats still reports the full
            # shape: a zero queue and the engine's WAL offset, so
            # routers and monitors never special-case plain servers.
            stats = self.get_json(server, "/stats")
            assert stats["ingest"] == {
                "queue_depth": 0,
                "streaming": False,
                "wal_appended": 0,
            }
            assert stats["role"] == "primary"
            assert stats["version"] == 0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


# ----------------------------------------------------------------------
# the headline guarantees
# ----------------------------------------------------------------------


class TestStreamEquivalence:
    """A delta stream ingested through watch-file + WAL + batcher ends
    at scores equal (1e-9) to the same deltas applied one-by-one via
    the direct ``POST /delta`` path."""

    BASE = 8
    DELTAS = 4

    def test_watch_wal_batcher_equals_one_by_one(self, tmp_path):
        deltas = [family_delta(self.BASE + step) for step in range(self.DELTAS)]
        # Reference: one synchronous apply per delta (the POST path).
        left, right = family_pair(self.BASE)
        reference = AlignmentService.cold_start(left, right, ParisConfig())
        for delta in deltas:
            reference.apply_delta(delta)
        # Stream: NDJSON watch file → WAL → coalescing batcher.
        left2, right2 = family_pair(self.BASE)
        streamed = AlignmentService.cold_start(left2, right2, ParisConfig())
        wal = WriteAheadLog(tmp_path / "wal.ndjson")
        batcher = DeltaBatcher(streamed, wal=wal, max_batch=16, max_lag=0.05)
        watch = tmp_path / "deltas.ndjson"
        with watch.open("w", encoding="utf-8") as stream:
            for delta in deltas:
                stream.write(json.dumps(delta.to_json()) + "\n")
        tailer = NdjsonFileTailer(batcher, watch, poll_interval=0.02)
        stack = StreamStack(batcher=batcher, wal=wal, sources=[tailer]).start()
        try:
            deadline = time.monotonic() + 60
            while streamed.state.wal_offset < self.DELTAS:
                assert time.monotonic() < deadline, streamed.stats()
                time.sleep(0.05)
        finally:
            stack.stop()
        assert_stores_match(streamed.state.store, reference.state.store)
        # And both equal the cold realign of the final corpus.
        cold = align(
            *family_pair(self.BASE + self.DELTAS),
            ParisConfig(score_stationarity=True),
        )
        assert_stores_match(streamed.state.store, cold.instances)


class TestCrashRecovery:
    """SIGKILL mid-batch ≡ never crashing: restart from snapshot + WAL
    replay reaches the scores of an uninterrupted run."""

    BASE = 8

    def test_mid_batch_crash_then_snapshot_plus_wal_replay(self, tmp_path, monkeypatch):
        from repro.core.aligner import ParisAligner

        left, right = family_pair(self.BASE)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        state_dir = tmp_path / "state"
        service.snapshot(state_dir)
        wal = WriteAheadLog(tmp_path / "wal.ndjson")
        batcher = DeltaBatcher(service, wal=wal, max_batch=8, max_lag=0.1)
        # Three deltas land in the WAL and the queue...
        for step in range(3):
            batcher.submit(family_delta(self.BASE + step), source="w", seq=step + 1)
        # ...and the engine dies mid-batch, after mutation started (the
        # same poisoning surface test_service.py exercises): the WAL
        # has everything, the snapshot has nothing of the batch.
        real_warm_align = ParisAligner.warm_align

        def explode(*_args, **_kwargs):
            raise OSError("killed mid-batch")

        monkeypatch.setattr(ParisAligner, "warm_align", explode)
        batcher.start()
        batcher.flush(timeout=60)
        batcher.close()
        assert service.poisoned is not None
        with pytest.raises(RuntimeError):
            service.pair("p0a", "q0a")
        monkeypatch.setattr(ParisAligner, "warm_align", real_warm_align)

        # Restart: snapshot + WAL replay (what serve --wal does on boot).
        resumed = AlignmentService.from_state(load_state(state_dir))
        recovered_wal = WriteAheadLog(tmp_path / "wal.ndjson")
        assert recovered_wal.offset == 3
        replayed = replay_wal(resumed, recovered_wal)
        assert replayed == 3
        assert resumed.state.wal_offset == 3

        # The uninterrupted twin applies the same stream, no crash.
        left2, right2 = family_pair(self.BASE)
        uninterrupted = AlignmentService.cold_start(left2, right2, ParisConfig())
        for step in range(3):
            uninterrupted.apply_delta(family_delta(self.BASE + step))
        assert_stores_match(resumed.state.store, uninterrupted.state.store)
        cold = align(*family_pair(self.BASE + 3), ParisConfig(score_stationarity=True))
        assert_stores_match(resumed.state.store, cold.instances)

    def test_partial_application_before_crash_is_idempotent(self, tmp_path):
        """Replaying WAL records whose effects partially landed before
        the crash (applied, but not yet covered by a snapshot) must
        converge to the same state: triple changes are idempotent."""
        left, right = family_pair(self.BASE)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        state_dir = tmp_path / "state"
        wal = WriteAheadLog(tmp_path / "wal.ndjson")
        # First delta: WAL'd, applied, *snapshotted*.
        first = family_delta(self.BASE)
        service.apply_delta(first, wal_offset=wal.append(first, "w", 1))
        service.snapshot(state_dir)
        # Second delta: WAL'd and applied — but the crash hits before
        # any snapshot records it.
        second = family_delta(self.BASE + 1)
        service.apply_delta(second, wal_offset=wal.append(second, "w", 2))
        wal.close()
        # Restart from the snapshot: record 2 replays onto a state that
        # (unknowingly) already contains half the story? No — the
        # snapshot predates it entirely; and replaying record 2 against
        # the *current* ontologies later is the no-op case.
        resumed = AlignmentService.from_state(load_state(state_dir))
        assert resumed.state.wal_offset == 1
        replayed = replay_wal(resumed, WriteAheadLog(tmp_path / "wal.ndjson"))
        assert replayed == 1
        cold = align(*family_pair(self.BASE + 2), ParisConfig(score_stationarity=True))
        assert_stores_match(resumed.state.store, cold.instances)
        # Replaying the whole WAL again over the caught-up state (the
        # double-delivery worst case) changes nothing.
        resumed.state.wal_offset = 0
        replay_wal(resumed, WriteAheadLog(tmp_path / "wal.ndjson"))
        assert_stores_match(resumed.state.store, cold.instances)
