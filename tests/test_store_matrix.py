"""Unit tests for EquivalenceStore and SubsumptionMatrix."""

import pytest

from repro.core.matrix import SubsumptionMatrix
from repro.core.store import EquivalenceStore
from repro.rdf.terms import Relation, Resource


def R(name):
    return Resource(name)


class TestStoreBasics:
    def test_set_get(self):
        store = EquivalenceStore()
        store.set(R("a"), R("x"), 0.8)
        assert store.get(R("a"), R("x")) == 0.8

    def test_unknown_is_zero(self):
        store = EquivalenceStore()
        assert store.get(R("a"), R("x")) == 0.0

    def test_bidirectional(self):
        store = EquivalenceStore()
        store.set(R("a"), R("x"), 0.8)
        assert dict(store.equals_of(R("a"))) == {R("x"): 0.8}
        assert dict(store.equals_of_right(R("x"))) == {R("a"): 0.8}

    def test_truncation(self):
        store = EquivalenceStore(truncation_threshold=0.1)
        store.set(R("a"), R("x"), 0.05)
        assert store.get(R("a"), R("x")) == 0.0
        assert len(store) == 0

    def test_truncation_erases_existing(self):
        store = EquivalenceStore(truncation_threshold=0.1)
        store.set(R("a"), R("x"), 0.5)
        store.set(R("a"), R("x"), 0.05)
        assert store.get(R("a"), R("x")) == 0.0

    def test_zero_not_stored(self):
        store = EquivalenceStore()
        store.set(R("a"), R("x"), 0.0)
        assert len(store) == 0

    def test_overwrite(self):
        store = EquivalenceStore()
        store.set(R("a"), R("x"), 0.5)
        store.set(R("a"), R("x"), 0.9)
        assert store.get(R("a"), R("x")) == 0.9
        assert len(store) == 1

    def test_clamp_slightly_above_one(self):
        store = EquivalenceStore()
        store.set(R("a"), R("x"), 1.0 + 1e-12)
        assert store.get(R("a"), R("x")) == 1.0

    def test_out_of_range_rejected(self):
        store = EquivalenceStore()
        with pytest.raises(ValueError):
            store.set(R("a"), R("x"), 1.5)
        with pytest.raises(ValueError):
            store.set(R("a"), R("x"), -0.1)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            EquivalenceStore(truncation_threshold=1.0)

    def test_discard(self):
        store = EquivalenceStore()
        store.set(R("a"), R("x"), 0.5)
        store.discard(R("a"), R("x"))
        assert len(store) == 0
        store.discard(R("a"), R("x"))  # idempotent

    def test_items_and_len(self):
        store = EquivalenceStore()
        store.set(R("a"), R("x"), 0.5)
        store.set(R("b"), R("y"), 0.6)
        assert len(store) == 2
        assert set(store.items()) == {(R("a"), R("x"), 0.5), (R("b"), R("y"), 0.6)}

    def test_clear(self):
        store = EquivalenceStore()
        store.set(R("a"), R("x"), 0.5)
        store.clear()
        assert len(store) == 0


class TestTruncationBoundary:
    """Regression: the Section 5.2 truncation is ``Pr < θ ⇒ 0``.

    A score *exactly equal* to the threshold must be stored; strictly
    below must be dropped — and the shard-merge order of the parallel
    engine must not disturb maximal-assignment tie-breaking.
    """

    def test_exact_threshold_is_stored(self):
        store = EquivalenceStore(truncation_threshold=0.3)
        store.set(R("a"), R("x"), 0.3)
        assert store.get(R("a"), R("x")) == 0.3
        assert len(store) == 1

    def test_strictly_below_is_dropped(self):
        store = EquivalenceStore(truncation_threshold=0.3)
        store.set(R("a"), R("x"), 0.3 - 1e-15)
        assert store.get(R("a"), R("x")) == 0.0
        assert len(store) == 0

    def test_exact_threshold_survives_both_directions(self):
        store = EquivalenceStore(truncation_threshold=0.3)
        store.set(R("a"), R("x"), 0.3)
        assert dict(store.equals_of(R("a"))) == {R("x"): 0.3}
        assert dict(store.equals_of_right(R("x"))) == {R("a"): 0.3}

    def test_update_applies_truncation_per_entry(self):
        store = EquivalenceStore(truncation_threshold=0.3)
        store.update([
            (R("a"), R("x"), 0.3),
            (R("a"), R("y"), 0.2999999),
            (R("b"), R("z"), 0.9),
        ])
        assert set(store.items()) == {
            (R("a"), R("x"), 0.3),
            (R("b"), R("z"), 0.9),
        }

    def test_tie_break_independent_of_merge_order(self):
        # Two shards both scoring `a` with the same probability against
        # different counterparts: whichever shard order the parallel
        # merge applies, the assignment must pick the same counterpart.
        entries = [
            (R("a"), R("z"), 0.5),
            (R("a"), R("y"), 0.5),
            (R("b"), R("y"), 0.5),
        ]
        assignments = []
        for ordering in (entries, list(reversed(entries))):
            store = EquivalenceStore(truncation_threshold=0.3)
            store.update(ordering)
            assignments.append(
                (store.maximal_assignment(), store.maximal_assignment(reverse=True))
            )
        assert assignments[0] == assignments[1]
        forward, backward = assignments[0]
        assert forward[R("a")] == (R("y"), 0.5)  # lexicographic tie-break
        assert backward[R("y")] == (R("a"), 0.5)

    def test_boundary_scores_tie_break_at_threshold(self):
        store = EquivalenceStore(truncation_threshold=0.5)
        store.update([(R("a"), R("x"), 0.5), (R("a"), R("w"), 0.5)])
        assert store.maximal_assignment()[R("a")] == (R("w"), 0.5)


class TestMaximalAssignment:
    def test_picks_best(self):
        store = EquivalenceStore()
        store.set(R("a"), R("x"), 0.5)
        store.set(R("a"), R("y"), 0.9)
        assert store.maximal_assignment()[R("a")] == (R("y"), 0.9)

    def test_reverse_direction(self):
        store = EquivalenceStore()
        store.set(R("a"), R("x"), 0.5)
        store.set(R("b"), R("x"), 0.9)
        assert store.maximal_assignment(reverse=True)[R("x")] == (R("b"), 0.9)

    def test_tie_breaks_deterministically(self):
        store = EquivalenceStore()
        store.set(R("a"), R("z"), 0.5)
        store.set(R("a"), R("y"), 0.5)
        # lexicographically smaller name wins on exact ties
        assert store.maximal_assignment()[R("a")] == (R("y"), 0.5)

    def test_assignment_change(self):
        old = {R("a"): (R("x"), 0.5), R("b"): (R("y"), 0.5)}
        new = {R("a"): (R("x"), 0.9), R("b"): (R("z"), 0.5)}
        assert EquivalenceStore.assignment_change(old, new) == 0.5

    def test_assignment_change_appearance_counts(self):
        old = {}
        new = {R("a"): (R("x"), 0.5)}
        assert EquivalenceStore.assignment_change(old, new) == 1.0

    def test_assignment_change_empty(self):
        assert EquivalenceStore.assignment_change({}, {}) == 0.0

    def test_restricted_to_maximal_keeps_both_sides(self):
        store = EquivalenceStore()
        store.set(R("a"), R("x"), 0.9)
        store.set(R("a"), R("y"), 0.5)
        store.set(R("b"), R("y"), 0.4)
        store.set(R("b"), R("x"), 0.3)
        restricted = store.restricted_to_maximal()
        assert restricted.get(R("a"), R("x")) == 0.9
        # a->y survives: it is y's best incoming match
        assert restricted.get(R("a"), R("y")) == 0.5
        # b->y survives: it is b's best outgoing match
        assert restricted.get(R("b"), R("y")) == 0.4
        # b->x is maximal for neither side: dropped
        assert restricted.get(R("b"), R("x")) == 0.0

    def test_repr(self):
        assert "0 pairs" in repr(EquivalenceStore())


class TestSubsumptionMatrix:
    def test_set_get(self):
        matrix = SubsumptionMatrix()
        matrix.set(Relation("r"), Relation("s"), 0.7)
        assert matrix.get(Relation("r"), Relation("s")) == 0.7

    def test_default(self):
        matrix = SubsumptionMatrix(default=0.1)
        assert matrix.get(Relation("r"), Relation("s")) == 0.1

    def test_bootstrap(self):
        matrix = SubsumptionMatrix.bootstrap(0.1)
        assert matrix.get(Relation("anything"), Relation("else")) == 0.1
        assert len(matrix) == 0

    def test_explicit_beats_default(self):
        matrix = SubsumptionMatrix(default=0.1)
        matrix.set(Relation("r"), Relation("s"), 0.7)
        assert matrix.get(Relation("r"), Relation("s")) == 0.7
        assert matrix.get(Relation("r"), Relation("t")) == 0.1

    def test_sub_default(self):
        matrix = SubsumptionMatrix()
        matrix.set_sub_default(Relation("r"), 0.1)
        assert matrix.get(Relation("r"), Relation("s")) == 0.1
        assert matrix.get(Relation("q"), Relation("s")) == 0.0

    def test_sub_default_overridden_by_entry(self):
        matrix = SubsumptionMatrix()
        matrix.set_sub_default(Relation("r"), 0.1)
        matrix.set(Relation("r"), Relation("s"), 0.7)
        assert matrix.get(Relation("r"), Relation("s")) == 0.7
        assert matrix.get(Relation("r"), Relation("t")) == 0.1

    def test_zero_removes_entry(self):
        matrix = SubsumptionMatrix()
        matrix.set(Relation("r"), Relation("s"), 0.7)
        matrix.set(Relation("r"), Relation("s"), 0.0)
        assert len(matrix) == 0

    def test_reverse_index(self):
        matrix = SubsumptionMatrix()
        matrix.set(Relation("r"), Relation("s"), 0.7)
        matrix.set(Relation("q"), Relation("s"), 0.4)
        assert dict(matrix.subs_of(Relation("s"))) == {
            Relation("r"): 0.7,
            Relation("q"): 0.4,
        }
        assert dict(matrix.supers_of(Relation("r"))) == {Relation("s"): 0.7}

    def test_best_super(self):
        matrix = SubsumptionMatrix()
        matrix.set(Relation("r"), Relation("s"), 0.7)
        matrix.set(Relation("r"), Relation("t"), 0.9)
        assert matrix.best_super(Relation("r")) == (Relation("t"), 0.9)
        assert matrix.best_super(Relation("unknown")) is None

    def test_pairs_above_sorted(self):
        matrix = SubsumptionMatrix()
        matrix.set(Relation("a"), Relation("x"), 0.3)
        matrix.set(Relation("b"), Relation("y"), 0.9)
        matrix.set(Relation("c"), Relation("z"), 0.6)
        pairs = matrix.pairs_above(0.5)
        assert [p[2] for p in pairs] == [0.9, 0.6]

    def test_subs_with_match_above(self):
        matrix = SubsumptionMatrix()
        matrix.set(Resource("c1"), Resource("d1"), 0.3)
        matrix.set(Resource("c1"), Resource("d2"), 0.8)
        matrix.set(Resource("c2"), Resource("d1"), 0.4)
        assert matrix.subs_with_match_above(0.5) == 1
        assert matrix.subs_with_match_above(0.3) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SubsumptionMatrix(default=1.5)
        matrix = SubsumptionMatrix()
        with pytest.raises(ValueError):
            matrix.set(Relation("r"), Relation("s"), -0.1)
        with pytest.raises(ValueError):
            matrix.set_sub_default(Relation("r"), 2.0)
