"""Unit tests for the term model (repro.rdf.terms)."""

import pytest

from repro.rdf.terms import Literal, Relation, Resource


class TestResource:
    def test_equality_by_name(self):
        assert Resource("London") == Resource("London")
        assert Resource("London") != Resource("Londres")

    def test_hash_consistency(self):
        assert hash(Resource("London")) == hash(Resource("London"))
        assert {Resource("a"), Resource("a")} == {Resource("a")}

    def test_not_equal_to_literal_with_same_text(self):
        assert Resource("London") != Literal("London")
        assert hash(Resource("London")) != hash(Literal("London"))

    def test_immutable(self):
        resource = Resource("x")
        with pytest.raises(AttributeError):
            resource.name = "y"

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Resource("")

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            Resource(42)

    def test_str_and_repr(self):
        assert str(Resource("Elvis")) == "Elvis"
        assert "Elvis" in repr(Resource("Elvis"))

    def test_is_resource_flags(self):
        assert Resource("x").is_resource
        assert not Resource("x").is_literal


class TestLiteral:
    def test_equality_by_value(self):
        assert Literal("1935") == Literal("1935")
        assert Literal("1935") != Literal("1936")

    def test_datatype_is_hint_only(self):
        assert Literal("42", datatype="integer") == Literal("42")
        assert hash(Literal("42", datatype="integer")) == hash(Literal("42"))

    def test_numeric_coercion(self):
        assert Literal(42).value == "42"
        assert Literal(42).datatype == "integer"
        assert Literal(2.5).value == "2.5"
        assert Literal(2.5).datatype == "decimal"

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            Literal(True)

    def test_rejects_none(self):
        with pytest.raises(TypeError):
            Literal(None)

    def test_immutable(self):
        literal = Literal("a")
        with pytest.raises(AttributeError):
            literal.value = "b"

    def test_is_literal_flags(self):
        assert Literal("x").is_literal
        assert not Literal("x").is_resource

    def test_repr_includes_datatype(self):
        assert "date" in repr(Literal("1935-01-08", datatype="date"))


class TestRelation:
    def test_forward_by_default(self):
        relation = Relation("wasBornIn")
        assert not relation.inverted
        assert str(relation) == "wasBornIn"

    def test_inverse_swaps_direction(self):
        relation = Relation("wasBornIn")
        assert relation.inverse.inverted
        assert str(relation.inverse) == "wasBornIn^-1"

    def test_double_inverse_is_identity(self):
        relation = Relation("r")
        assert relation.inverse.inverse == relation

    def test_base_strips_inversion(self):
        assert Relation("r", inverted=True).base == Relation("r")
        assert Relation("r").base == Relation("r")

    def test_parse_round_trips(self):
        for text in ("actedIn", "actedIn^-1"):
            assert str(Relation.parse(text)) == text

    def test_parse_inverse(self):
        parsed = Relation.parse("actedIn^-1")
        assert parsed == Relation("actedIn", inverted=True)

    def test_forward_and_inverse_differ(self):
        assert Relation("r") != Relation("r", inverted=True)
        assert hash(Relation("r")) != hash(Relation("r", inverted=True))

    def test_rejects_suffix_in_name(self):
        with pytest.raises(ValueError):
            Relation("r^-1")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Relation("")

    def test_immutable(self):
        relation = Relation("r")
        with pytest.raises(AttributeError):
            relation.inverted = True

    def test_distinct_from_resource(self):
        assert Relation("x") != Resource("x")
