"""Vectorized Eq. 13 kernel vs the dict reference implementation.

The kernel (`repro.core.vectorized`) must be *bit-identical* to the
dict path — same entries, same insertion order, same floats — because
later iterations accumulate products over store dict order and the
1e-12 warm/cold equality guarantees of the service stack inherit from
it.  Hypothesis drives the same seeded ontology generator the parallel
properties use; every failure shrinks to a reproducible seed.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from test_parallel_properties import pass_inputs, random_pair

from repro import ParisConfig, align
from repro.core import aligner as aligner_module
from repro.core.equivalence import ordered_instances, score_instances
from repro.core.store import EquivalenceStore
from repro.core.vectorized import HAVE_NUMPY, VectorizedKernel
from repro.rdf.terms import Resource

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="kernel requires numpy")

TOLERANCE = 1e-12


def make_kernel(left, right, view, fun1, fun2):
    return VectorizedKernel(left, right, fun1, fun2, view._right_index)


def result_snapshot(result):
    """Every scored surface of an alignment, order-independent."""
    return tuple(
        sorted((str(a), str(b), p) for a, b, p in matrix.items())
        for matrix in (
            result.instances,
            result.relations12,
            result.relations21,
            result.classes12,
            result.classes21,
        )
    )


class TestKernelExactness:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=40_000))
    def test_pass_matches_dict_reference(self, seed):
        left, right, view, fun1, fun2, rel12, rel21, theta = pass_inputs(random_pair(seed))
        instances = ordered_instances(left.instances)
        expected = score_instances(
            instances, left, right, view, fun1, fun2, rel12, rel21, theta
        )
        kernel = make_kernel(left, right, view, fun1, fun2)
        prepared = kernel.prepare_pass(view.store, rel12, rel21)
        got = kernel.score_entries(instances, prepared, theta)
        # Not just 1e-12-close: identical entries in identical order.
        assert [(a, b) for a, b, _p in got] == [(a, b) for a, b, _p in expected]
        for (_, _, got_p), (_, _, want_p) in zip(got, expected):
            assert got_p == pytest.approx(want_p, abs=TOLERANCE)

    def test_full_align_matches_dict_engine(self):
        for seed in range(8):
            left, right = random_pair(seed)
            reference = align(left, right, ParisConfig(scoring="dict"))
            vectorized = align(left, right, ParisConfig(scoring="vectorized"))
            assert result_snapshot(vectorized) == result_snapshot(reference)

    def test_store_lowering_roundtrip_preserves_order(self):
        left, right, view, fun1, fun2, rel12, rel21, theta = pass_inputs(random_pair(7))
        kernel = make_kernel(left, right, view, fun1, fun2)
        prepared = kernel.prepare_pass(view.store, rel12, rel21)
        store = EquivalenceStore()
        store.update(kernel.entries_for(*kernel.score_ids(kernel.ordered_ids, prepared, theta)))
        lowered = kernel.lower_store(store)
        assert lowered is not None
        rebuilt = kernel.rebuild_store(lowered, store.truncation_threshold)
        # Both dict orders survive the array round-trip: forward rows…
        assert list(rebuilt.items()) == list(store.items())
        # …and the backward rows the reverse relation pass folds over.
        assert list(rebuilt.backward_items()) == list(store.backward_items())

    def test_ids_for_marks_statementless_instances(self):
        left, right, view, fun1, fun2, _rel12, _rel21, _theta = pass_inputs(random_pair(3))
        kernel = make_kernel(left, right, view, fun1, fun2)
        ids = kernel.ids_for([next(iter(left.instances)), Resource("never-seen")])
        assert ids[0] >= 0
        assert ids[1] == -1


class TestEngineSelection:
    def test_vectorized_scoring_rejects_negative_evidence(self):
        with pytest.raises(ValueError, match="negative evidence"):
            ParisConfig(scoring="vectorized", use_negative_evidence=True)

    def test_unknown_scoring_mode_rejected(self):
        with pytest.raises(ValueError, match="scoring"):
            ParisConfig(scoring="simd")

    def test_negative_evidence_auto_falls_back_to_dict(self):
        left, right = random_pair(11)
        reference = align(left, right, ParisConfig(scoring="dict", use_negative_evidence=True))
        auto = align(left, right, ParisConfig(scoring="auto", use_negative_evidence=True))
        assert result_snapshot(auto) == result_snapshot(reference)


class TestWorkerPoolPath:
    def test_pool_align_matches_sequential(self, monkeypatch):
        """The persistent-pool engine (process backend) must be exact.

        The gates that keep the pool away from tiny inputs are lowered
        so these small fixtures actually exercise the fork/dispatch/
        merge machinery end to end.
        """
        monkeypatch.setattr(aligner_module, "POOL_MIN_FRONTIER", 0)
        monkeypatch.setattr(aligner_module, "KERNEL_REBUILD_MIN_FRONTIER", 0)
        for seed in (0, 5, 9):
            left, right = random_pair(seed)
            reference = align(left, right, ParisConfig(scoring="dict"))
            pooled = align(
                left,
                right,
                ParisConfig(workers=2, parallel_backend="process"),
            )
            assert result_snapshot(pooled) == result_snapshot(reference)

    def test_pool_align_with_classes_matches_sequential(self, monkeypatch):
        """Typed fixture: the pooled Eq. 17 class pass must be exact too."""
        from repro.datasets.incremental import family_pair

        monkeypatch.setattr(aligner_module, "POOL_MIN_FRONTIER", 0)
        monkeypatch.setattr(aligner_module, "KERNEL_REBUILD_MIN_FRONTIER", 0)
        left, right = family_pair(4, with_classes=True)
        reference = align(left, right, ParisConfig(scoring="dict"))
        pooled = align(left, right, ParisConfig(workers=2, parallel_backend="process"))
        assert result_snapshot(pooled) == result_snapshot(reference)
        assert result_snapshot(pooled)[3]  # classes12 actually non-empty
