"""HTTP-level tests for the production read path.

Exercises the full surface the ISSUE added to the serving stack, over
real sockets against all three roles (primary, replica, router):
keyset pagination with concurrent-delta detection, top-k and
per-entity neighborhood reads, WAL-offset ETags with ``If-None-Match``
revalidation (304 on every read endpoint, relayed through the router),
the streamed full dump (chunked transfer, TSV byte-identity, capped
per-request peak allocation), long-poll ``/watch`` and the webhook
subscription endpoints.
"""

from __future__ import annotations

import json
import threading
import time
import tracemalloc
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest

from repro.core.config import ParisConfig
from repro.datasets.incremental import family_addition, family_pair
from repro.io.alignment_io import render_assignment_rows
from repro.service import AlignmentService, Delta
from repro.service.replica import ReadRouter, ReplicaNode, build_router_server
from repro.service.server import _alignment_json_chunks, build_server
from repro.service.stream import WriteAheadLog


def family_delta(start: int, count: int = 1) -> Delta:
    add1, add2 = family_addition(start, count)
    return Delta(add1=tuple(add1), add2=tuple(add2))


def url_of(server, path=""):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def get_raw(server, path, headers=None):
    """(status, email.Message headers, body bytes) — 304s included."""
    request = urllib.request.Request(url_of(server, path), headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, response.headers, response.read()
    except urllib.error.HTTPError as error:
        body = error.read()
        return error.code, error.headers, body


def get_json(server, path, headers=None):
    status, response_headers, body = get_raw(server, path, headers)
    assert status == 200, (status, body)
    return json.loads(body), response_headers


def post_json(server, path, payload):
    request = urllib.request.Request(
        url_of(server, path),
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.load(response)


def serve(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


READ_PATHS = (
    "/healthz",
    "/stats",
    "/pair/p0a/q0a",
    "/alignment",
    "/alignment?top=2",
    "/alignment?limit=3",
    "/alignment?entity=p0a",
)


@pytest.fixture()
def primary(tmp_path):
    left, right = family_pair(5)
    service = AlignmentService.cold_start(left, right, ParisConfig())
    server = build_server(
        service, "127.0.0.1", 0, state_dir=tmp_path / "state", snapshot_every=0
    )
    thread = serve(server)
    yield server, service
    server.shutdown()
    server.server_close()
    server.subs.close()
    thread.join(timeout=10)


class TestAlignmentReads:
    def test_page_walk_concatenates_to_the_full_dump(self, primary):
        server, _service = primary
        dump, headers = get_json(server, "/alignment")
        assert headers["ETag"] == 'W/"v0"'
        walked, cursor, pages = [], None, 0
        while True:
            path = "/alignment?limit=4" + (f"&cursor={cursor}" if cursor else "")
            page, page_headers = get_json(server, path)
            assert page_headers["ETag"] == headers["ETag"]
            assert not page["changed_since_cursor"]
            assert page["version"] == dump["version"]
            assert page["wal_offset"] == dump["wal_offset"]
            walked.extend(page["pairs"])
            pages += 1
            cursor = page["next_cursor"]
            if cursor is None:
                break
        assert walked == dump["pairs"]
        assert pages == -(-len(dump["pairs"]) // 4)

    def test_top_k_is_a_prefix_of_the_dump(self, primary):
        server, _service = primary
        dump, _headers = get_json(server, "/alignment")
        top, _headers = get_json(server, "/alignment?top=3")
        assert top["pairs"] == dump["pairs"][:3]
        assert top["top"] == 3

    def test_threshold_matches_a_full_table_filter(self, primary):
        server, service = primary
        dump, _headers = get_json(server, "/alignment")
        threshold = sorted(p["probability"] for p in dump["pairs"])[len(dump["pairs"]) // 2]
        filtered, _headers = get_json(server, f"/alignment?threshold={threshold}")
        expected = [p for p in dump["pairs"] if p["probability"] >= threshold]
        assert filtered["pairs"] == expected
        paged, _headers = get_json(server, f"/alignment?threshold={threshold}&limit=100")
        assert paged["pairs"] == expected
        # ...and against the engine's own full-table filter.
        table = service.alignment(threshold)
        assert len(expected) == len(table)

    def test_entity_neighborhood(self, primary):
        server, _service = primary
        payload, _headers = get_json(server, "/alignment?entity=p0a")
        assert payload["entity"] == "p0a"
        assert payload["best_counterpart_as_left"]["right"] == "q0a"
        probabilities = [row["probability"] for row in payload["as_left"]]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_streamed_tsv_is_byte_identical_to_the_renderer(self, primary):
        server, service = primary
        status, headers, body = get_raw(server, "/alignment?format=tsv")
        assert status == 200
        assert headers["Transfer-Encoding"] == "chunked"
        assert body == render_assignment_rows(service.alignment(0.0)).encode("utf-8")

    def test_json_dump_streams_chunked(self, primary):
        server, _service = primary
        status, headers, body = get_raw(server, "/alignment")
        assert status == 200
        assert headers["Transfer-Encoding"] == "chunked"
        assert "Content-Length" not in headers
        assert len(json.loads(body)["pairs"]) == 15

    @pytest.mark.parametrize(
        "path",
        [
            "/alignment?threshold=abc",
            "/alignment?top=abc",
            "/alignment?top=0",
            "/alignment?limit=abc",
            "/alignment?limit=0",
            "/alignment?cursor=garbage",
        ],
    )
    def test_bad_read_parameters_are_400(self, primary, path):
        server, _service = primary
        status, _headers, body = get_raw(server, path)
        assert status == 400, body

    def test_cursor_with_wrong_threshold_is_400(self, primary):
        server, _service = primary
        page, _headers = get_json(server, "/alignment?limit=2&threshold=0.5")
        status, _headers, body = get_raw(
            server, f"/alignment?limit=2&threshold=0.6&cursor={page['next_cursor']}"
        )
        assert status == 400
        assert b"threshold" in body


class TestCaching:
    def test_304_on_every_read_endpoint(self, primary):
        server, _service = primary
        for path in READ_PATHS:
            _status, headers, _body = get_raw(server, path)
            etag = headers["ETag"]
            assert etag, path
            assert headers["Cache-Control"] == "no-cache"
            status, revalidated, body = get_raw(
                server, path, headers={"If-None-Match": etag}
            )
            assert status == 304, (path, status)
            assert revalidated["ETag"] == etag
            assert body == b""

    def test_delta_invalidates_and_flags_open_cursors(self, primary):
        server, _service = primary
        page, headers = get_json(server, "/alignment?limit=4")
        etag = headers["ETag"]
        post_json(server, "/delta", family_delta(5).to_json())
        # The old validator no longer matches: full 200 with a new tag.
        status, fresh_headers, _body = get_raw(
            server, "/alignment?limit=4", headers={"If-None-Match": etag}
        )
        assert status == 200
        assert fresh_headers["ETag"] != etag
        # The open cursor still pages (keyset), but flags the delta.
        resumed, _headers = get_json(
            server, f"/alignment?limit=4&cursor={page['next_cursor']}"
        )
        assert resumed["changed_since_cursor"]
        assert resumed["pairs"]
        # The new validator revalidates.
        status, _headers, _body = get_raw(
            server, "/alignment", headers={"If-None-Match": fresh_headers["ETag"]}
        )
        assert status == 304

    def test_streaming_dump_peak_allocation_is_capped(self):
        """Regression for the full-JSON materialization fix: producing
        the dump body must never allocate anything close to the full
        serialized document."""
        keys = [(-(1.0 - i / 60000), f"entity-{i:06d}", f"match-{i:06d}") for i in range(30000)]
        meta = {"version": 9, "wal_offset": 9}
        full_size = sum(len(c) for c in _alignment_json_chunks(keys, 0.0, meta))
        assert full_size > 1_500_000
        tracemalloc.start()
        try:
            baseline, _ = tracemalloc.get_traced_memory()
            total = 0
            for chunk in _alignment_json_chunks(keys, 0.0, meta):
                total += len(chunk)
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert total == full_size
        assert peak - baseline < full_size / 4, (peak - baseline, full_size)


class TestWatch:
    def test_exactly_one_deduped_notification(self, primary):
        server, _service = primary
        result = {}

        def watch():
            result["note"], _headers = get_json(
                server, "/watch?entity=p5a&epsilon=0.05&timeout=30"
            )

        thread = threading.Thread(target=watch)
        thread.start()
        time.sleep(0.3)
        post_json(server, "/delta", family_delta(5).to_json())
        thread.join(timeout=30)
        note = result["note"]
        assert note["entity"] == "p5a"
        assert len(note["changes"]) == 1  # collapsed: one net change
        assert note["changes"][0]["probability"] > 0.9
        assert note["version"] == 1
        # Resuming past the delivered version: dedup → timeout.
        replay, _headers = get_json(
            server, f"/watch?entity=p5a&after={note['version']}&timeout=0.2"
        )
        assert replay["timeout"] is True

    def test_watch_requires_entity(self, primary):
        server, _service = primary
        status, _headers, _body = get_raw(server, "/watch")
        assert status == 400

    def test_stable_entity_times_out(self, primary):
        server, _service = primary
        post_json(server, "/delta", family_delta(5).to_json())
        note, _headers = get_json(server, "/watch?entity=p0a&after=0&timeout=0.2")
        assert note["timeout"] is True


class TestSubscriptions:
    def test_webhook_lifecycle(self, primary):
        server, _service = primary
        received = []

        class Hook(BaseHTTPRequestHandler):
            def do_POST(self):
                received.append(
                    json.loads(self.rfile.read(int(self.headers["Content-Length"])))
                )
                self.send_response(204)
                self.end_headers()

            def log_message(self, *args):
                pass

        sink = HTTPServer(("127.0.0.1", 0), Hook)
        serve(sink)
        try:
            record = post_json(
                server,
                "/subscribe",
                {
                    "url": f"http://127.0.0.1:{sink.server_address[1]}/hook",
                    "entity": "p5a",
                    "epsilon": 0.05,
                },
            )
            assert record["id"] == "sub-1"
            listed, _headers = get_json(server, "/subscriptions")
            assert [sub["id"] for sub in listed["subscriptions"]] == ["sub-1"]
            post_json(server, "/delta", family_delta(5).to_json())
            deadline = time.monotonic() + 30
            while not received and time.monotonic() < deadline:
                time.sleep(0.05)
            assert len(received) == 1
            assert received[0]["entity"] == "p5a"
            assert received[0]["changes"][0]["probability"] > 0.9
            time.sleep(0.3)
            assert len(received) == 1  # delivered exactly once
            removed = post_json(server, "/unsubscribe", {"id": "sub-1"})
            assert removed["removed"] is True
            listed, _headers = get_json(server, "/subscriptions")
            assert listed["subscriptions"] == []
        finally:
            sink.shutdown()

    @pytest.mark.parametrize(
        "payload",
        [
            {"entity": "x"},
            {"url": "ftp://nope", "entity": "x"},
            {"url": "http://h/hook", "entity": ""},
            {"url": "http://h/hook", "entity": "x", "epsilon": -1},
            "not an object",
        ],
    )
    def test_subscribe_validation(self, primary, payload):
        server, _service = primary
        with pytest.raises(urllib.error.HTTPError) as error:
            post_json(server, "/subscribe", payload)
        assert error.value.code == 400


class TestReplicaAndRouter:
    @pytest.fixture()
    def cluster(self, tmp_path):
        left, right = family_pair(6)
        primary = AlignmentService.cold_start(left, right, ParisConfig())
        state_dir = tmp_path / "state"
        primary.snapshot(state_dir)
        wal = WriteAheadLog(state_dir / "wal.ndjson")
        offset = wal.append(family_delta(6), "writer", 1)
        primary.apply_delta(family_delta(6), wal_offset=offset)
        primary_server = build_server(
            primary, "127.0.0.1", 0, state_dir=state_dir, snapshot_every=0
        )
        replica = ReplicaNode(state_dir, batch=8)
        replica.catch_up(offset)
        replica_server = build_server(None, "127.0.0.1", 0, replica=replica)
        router = ReadRouter(
            url_of(primary_server),
            [url_of(replica_server)],
            check_interval=0.2,
            stats_ttl=0.05,
        )
        router_server = build_router_server(router)
        threads = [serve(s) for s in (primary_server, replica_server, router_server)]
        router.start()
        yield {
            "primary_server": primary_server,
            "replica_server": replica_server,
            "router_server": router_server,
        }
        router_server.shutdown()
        router_server.server_close()
        router.stop()
        replica_server.shutdown()
        replica_server.server_close()
        replica.stop()
        primary_server.shutdown()
        primary_server.server_close()
        primary_server.subs.close()
        replica_server.subs.close()
        wal.close()
        for thread in threads:
            thread.join(timeout=10)

    @pytest.mark.parametrize("role", ["replica_server", "router_server"])
    def test_304_on_every_read_endpoint_all_roles(self, cluster, role):
        server = cluster[role]
        paths = ["/pair/p0a/q0a", "/alignment", "/alignment?top=2",
                 "/alignment?limit=3"]
        if role == "replica_server":
            # /healthz and /stats are state-stamped on engine-backed
            # roles; the router's own health/stats describe live fleet
            # state and are deliberately uncacheable.
            paths += ["/healthz", "/stats"]
        for path in paths:
            _status, headers, _body = get_raw(server, path)
            etag = headers["ETag"]
            assert etag, (role, path)
            status, revalidated, body = get_raw(
                server, path, headers={"If-None-Match": etag}
            )
            assert status == 304, (role, path, status)
            assert revalidated["ETag"] == etag
            assert body == b""

    def test_etags_are_cross_node_comparable(self, cluster):
        _dump, primary_headers = get_json(cluster["primary_server"], "/alignment")
        _dump, replica_headers = get_json(cluster["replica_server"], "/alignment")
        assert primary_headers["ETag"] == replica_headers["ETag"] == 'W/"w1"'
        # A validator minted against the primary revalidates the replica.
        status, _headers, _body = get_raw(
            cluster["replica_server"],
            "/alignment",
            headers={"If-None-Match": primary_headers["ETag"]},
        )
        assert status == 304

    def test_replica_serves_the_paginated_surface(self, cluster):
        dump, _headers = get_json(cluster["replica_server"], "/alignment")
        page, _headers = get_json(cluster["replica_server"], "/alignment?limit=5")
        assert page["pairs"] == dump["pairs"][:5]
        top, _headers = get_json(cluster["replica_server"], "/alignment?top=2")
        assert top["pairs"] == dump["pairs"][:2]
        entity, _headers = get_json(cluster["replica_server"], "/alignment?entity=p6a")
        assert entity["best_counterpart_as_left"]["right"] == "q6a"

    def test_router_relays_etags_and_304(self, cluster):
        router_server = cluster["router_server"]
        dump, headers = get_json(router_server, "/alignment")
        etag = headers["ETag"]
        assert etag == 'W/"w1"'
        assert dump["pairs"]
        status, revalidated, body = get_raw(
            router_server, "/alignment", headers={"If-None-Match": etag}
        )
        assert status == 304
        assert revalidated["ETag"] == etag
        assert body == b""
        # Pagination rides through the router unchanged.
        page, _headers = get_json(router_server, "/alignment?limit=3")
        assert page["pairs"] == dump["pairs"][:3]
        assert page["next_cursor"]
