"""Warm-start fixpoint correctness.

The incremental service's contract: after ``apply_delta(Δ)``, the
stored scores equal a cold ``score_stationarity`` realignment of the
updated ontologies within 1e-9, read through *both* directions of the
store — for add-only and add+remove deltas.  Enforced here on the
uniform family fixture (the bench workload) and property-based over
randomized clustered ontologies (instance stores *and* both class
matrices, so the delta-aware class cache is covered by the same
property), plus unit coverage for the incremental relation matrices,
the copy-on-write overlay store, the restricted-view maintainer and
the stationarity mode itself.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ParisConfig, align
from repro.core.incremental import IncrementalRelationPass, RestrictedViewMaintainer
from repro.core.store import EquivalenceStore
from repro.core.subrelations import subrelation_pass
from repro.datasets.incremental import family_addition, family_pair, family_removal
from repro.rdf.ontology import Ontology
from repro.rdf.terms import Literal, Relation, Resource
from repro.rdf.triples import Triple
from repro.rdf.vocabulary import RDF_TYPE
from repro.service import AlignmentService, Delta

TOLERANCE = 1e-9


def assert_stores_match(warm_store, cold_store, tolerance=TOLERANCE):
    """Equality over the pair union, read through both directions."""
    mismatches = list(warm_store.diff(cold_store, tolerance))
    assert not mismatches, mismatches[:5]
    for left, right, probability in cold_store.items():
        assert warm_store.get(left, right) == pytest.approx(probability, abs=tolerance)
        assert warm_store.equals_of_right(right)[left] == pytest.approx(
            probability, abs=tolerance
        )
    for left, right, probability in warm_store.items():
        assert cold_store.get(left, right) == pytest.approx(probability, abs=tolerance)


def assert_class_matrices_match(warm, cold, tolerance=TOLERANCE):
    """Class-matrix equality over the entry union (both read orders)."""
    for sub, sup, probability in cold.items():
        assert warm.get(sub, sup) == pytest.approx(probability, abs=tolerance), (sub, sup)
    for sub, sup, probability in warm.items():
        assert cold.get(sub, sup) == pytest.approx(probability, abs=tolerance), (sub, sup)


def matrix_entries(matrix):
    return {(sub, sup): p for sub, sup, p in matrix.items()}


# ----------------------------------------------------------------------
# family fixture (the bench workload): 1 % deltas, 1e-9 equality
# ----------------------------------------------------------------------


class TestFamilyFixtureEquality:
    BASE = 100

    @pytest.fixture()
    def service(self):
        left, right = family_pair(self.BASE)
        return AlignmentService.cold_start(left, right, ParisConfig())

    def cold_reference(self, num_families, removals=((), ())):
        left, right = family_pair(num_families)
        for triple in removals[0]:
            left.remove_triple(triple)
        for triple in removals[1]:
            right.remove_triple(triple)
        return align(left, right, ParisConfig(score_stationarity=True))

    def test_add_only_delta_matches_cold_run(self, service):
        add1, add2 = family_addition(self.BASE, 1)
        report = service.apply_delta(Delta(add1=tuple(add1), add2=tuple(add2)))
        assert report.converged
        assert report.version == 1
        # The frontier stays inside the new family: the fixture's
        # clusters are disconnected, so 1 % of the data means far less
        # than 1 % of the instances get re-scored.
        assert report.dirty <= 2 * len(add1)
        reference = self.cold_reference(self.BASE + 1)
        assert_stores_match(service.state.store, reference.instances)

    def test_add_and_remove_delta_matches_cold_run(self, service):
        add1, add2 = family_addition(self.BASE, 1)
        rem1, rem2 = family_removal([4, 17])
        report = service.apply_delta(
            Delta(
                add1=tuple(add1),
                add2=tuple(add2),
                remove1=tuple(rem1),
                remove2=tuple(rem2),
            )
        )
        assert report.converged
        assert report.applied_remove == len(rem1) + len(rem2)
        reference = self.cold_reference(self.BASE + 1, removals=(rem1, rem2))
        assert_stores_match(service.state.store, reference.instances)

    def test_successive_deltas_stay_equal(self, service):
        for step in range(3):
            add1, add2 = family_addition(self.BASE + step, 1)
            report = service.apply_delta(Delta(add1=tuple(add1), add2=tuple(add2)))
            assert report.version == step + 1
        reference = self.cold_reference(self.BASE + 3)
        assert_stores_match(service.state.store, reference.instances)

    def test_noop_delta_changes_nothing(self, service):
        before = service.state.store.copy()
        version = service.state.version
        add1, _add2 = family_addition(0, 1)  # already present on both sides
        report = service.apply_delta(Delta(add1=tuple(add1)))
        assert report.applied_add == 0
        assert report.dirty == 0
        assert service.state.version == version
        assert service.state.store.max_difference(before) == 0.0

    def test_empty_delta(self, service):
        report = service.apply_delta(Delta())
        assert report.applied_add == 0 and report.applied_remove == 0

    def test_warm_snapshots_do_not_alias_live_matrices(self, service):
        """Per-pass snapshots must capture the matrices at that pass,
        not the live cache objects later passes mutate in place."""
        from repro.service.delta import apply_delta as apply_raw

        add1, add2 = family_addition(self.BASE, 1)
        state = service.state
        effect = apply_raw(state.ontology1, state.ontology2, Delta(
            add1=tuple(add1), add2=tuple(add2)
        ))
        dirty, seed1, seed2, full = service._invalidate(effect, 1e-12)
        result = service.aligner.warm_align(
            state.store,
            service._rel12,
            service._rel21,
            dirty_instances=dirty,
            seed_nodes1=seed1,
            seed_nodes2=seed2,
            delta_statements1=effect.statements1,
            delta_statements2=effect.statements2,
        )
        assert len(result.iterations) >= 2
        first_pass = result.iterations[0]
        assert first_pass.relations12 is not service._rel12.matrix
        assert first_pass.relations21 is not service._rel21.matrix
        # Frozen content: mutating the live cache afterwards must not
        # change what the snapshot recorded.
        before = {(a, b): p for a, b, p in first_pass.relations12.items()}
        service._rel12.matrix.clear_sub(next(iter(before))[0])
        assert {(a, b): p for a, b, p in first_pass.relations12.items()} == before

    def test_warm_snapshots_store_frontier_sized_deltas(self, service):
        """Warm-pass snapshots chain off the pre-delta assignment and
        store only per-pass assignment *deltas* (O(frontier), not
        O(matched) copies), while still reconstructing the full
        assignments exactly."""
        from repro.service.delta import apply_delta as apply_raw

        add1, add2 = family_addition(self.BASE, 1)
        state = service.state
        pre12 = dict(service._assignment12)
        effect = apply_raw(state.ontology1, state.ontology2, Delta(
            add1=tuple(add1), add2=tuple(add2)
        ))
        dirty, seed1, seed2, _full = service._invalidate(effect, 1e-12)
        result = service.aligner.warm_align(
            state.store,
            service._rel12,
            service._rel21,
            dirty_instances=dirty,
            seed_nodes1=seed1,
            seed_nodes2=seed2,
            delta_statements1=effect.statements1,
            delta_statements2=effect.statements2,
        )
        assert result.iterations
        matched = len(result.assignment12)
        assert matched > 100  # the base corpus is large...
        head = result.iterations[0]
        assert head.previous is None and head.base12 == pre12
        for snapshot in result.iterations:
            # ...but each pass's stored delta is frontier-sized.
            assert len(snapshot.assignment12_delta) <= len(dirty) + 3
            assert len(snapshot.assignment12_delta) < matched // 10
        # Reconstruction still yields the full per-pass assignments.
        assert result.iterations[-1].assignment12 == result.assignment12
        assert result.iterations[-1].assignment21 == result.assignment21


class TestFamilyFixtureWithClasses:
    """The class-enabled family fixture: the delta-aware class cache
    must reproduce a cold run's class matrices, not just the stores."""

    BASE = 60

    @pytest.fixture()
    def service(self):
        left, right = family_pair(self.BASE, with_classes=True)
        return AlignmentService.cold_start(left, right, ParisConfig())

    def cold_reference(self, num_families):
        left, right = family_pair(num_families, with_classes=True)
        return align(left, right, ParisConfig(score_stationarity=True))

    def test_classes_match_cold_run_after_delta(self, service):
        add1, add2 = family_addition(self.BASE, 1, with_classes=True)
        report = service.apply_delta(Delta(add1=tuple(add1), add2=tuple(add2)))
        assert report.converged
        reference = self.cold_reference(self.BASE + 1)
        assert_stores_match(service.state.store, reference.instances)
        assert_class_matrices_match(service.state.classes12, reference.classes12)
        assert_class_matrices_match(service.state.classes21, reference.classes21)
        # The fixture's classes have entries (the taxonomy is aligned).
        assert len(matrix_entries(service.state.classes12)) > 0

    def test_successive_class_deltas_stay_equal(self, service):
        for step in range(3):
            add1, add2 = family_addition(self.BASE + step, 1, with_classes=True)
            service.apply_delta(Delta(add1=tuple(add1), add2=tuple(add2)))
        reference = self.cold_reference(self.BASE + 3)
        assert_class_matrices_match(service.state.classes12, reference.classes12)
        assert_class_matrices_match(service.state.classes21, reference.classes21)

    def test_type_only_delta_refreshes_class_rows(self, service):
        """A pure rdf:type delta (no data statements) must invalidate
        exactly the touched class rows and still match a cold run."""
        retype = Delta(
            add1=(Triple(Resource("p0a"), RDF_TYPE, Resource("Town")),),
            add2=(Triple(Resource("q0a"), RDF_TYPE, Resource("Municipality")),),
        )
        report = service.apply_delta(retype)
        assert report.applied_add == 2
        left, right = family_pair(self.BASE, with_classes=True)
        left.add_type(Resource("p0a"), Resource("Town"))
        right.add_type(Resource("q0a"), Resource("Municipality"))
        reference = align(left, right, ParisConfig(score_stationarity=True))
        assert_stores_match(service.state.store, reference.instances)
        assert_class_matrices_match(service.state.classes12, reference.classes12)
        assert_class_matrices_match(service.state.classes21, reference.classes21)


# ----------------------------------------------------------------------
# property: randomized clustered ontologies
# ----------------------------------------------------------------------


def _cluster_triples(cluster, size, rng):
    """One cluster of anchored entities with partially mirrored facts."""
    left, right = [], []
    for i in range(size):
        p, q = f"p{cluster}_{i}", f"q{cluster}_{i}"
        anchor = Literal(f"Entity {cluster}.{i}")
        left.append(Triple(Resource(p), Relation("name"), anchor))
        right.append(Triple(Resource(q), Relation("label"), anchor))
        year = Literal(f"{1500 + 10 * cluster + i}")
        if rng.random() < 0.8:
            left.append(Triple(Resource(p), Relation("born"), year))
        if rng.random() < 0.8:
            right.append(Triple(Resource(q), Relation("year"), year))
        if rng.random() < 0.5:
            left.append(Triple(Resource(p), RDF_TYPE, Resource("CPerson")))
        if rng.random() < 0.5:
            right.append(Triple(Resource(q), RDF_TYPE, Resource("CHuman")))
    for _ in range(rng.randint(0, 2 * size)):
        i, j = rng.randrange(size), rng.randrange(size)
        left.append(
            Triple(Resource(f"p{cluster}_{i}"), Relation("knows"), Resource(f"p{cluster}_{j}"))
        )
        if rng.random() < 0.7:
            right.append(
                Triple(Resource(f"q{cluster}_{i}"), Relation("friend"), Resource(f"q{cluster}_{j}"))
            )
    return left, right


def _random_workload(seed, with_removal):
    rng = random.Random(seed)
    base1, base2 = [], []
    num_clusters = rng.randint(2, 4)
    for cluster in range(num_clusters):
        left, right = _cluster_triples(cluster, rng.randint(1, 3), rng)
        base1.extend(left)
        base2.extend(right)
    add1, add2 = _cluster_triples(num_clusters, rng.randint(1, 3), rng)
    rem1, rem2 = (), ()
    if with_removal:
        candidates1 = [t for t in base1 if t.relation.name != "name"]
        candidates2 = [t for t in base2 if t.relation.name != "label"]
        if candidates1:
            rem1 = (rng.choice(candidates1),)
        if candidates2:
            rem2 = (rng.choice(candidates2),)
    return base1, base2, Delta(
        add1=tuple(add1), add2=tuple(add2), remove1=rem1, remove2=rem2
    )


def _build(name, triples):
    ontology = Ontology(name)
    for triple in triples:
        ontology.add_triple(triple)
    return ontology


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), with_removal=st.booleans())
def test_warm_start_equals_cold_run_on_random_ontologies(seed, with_removal):
    base1, base2, delta = _random_workload(seed, with_removal)
    service = AlignmentService.cold_start(
        _build("left", base1), _build("right", base2), ParisConfig(max_iterations=30)
    )
    report = service.apply_delta(delta)
    assert report.converged
    cold_left = _build("left", base1)
    cold_right = _build("right", base2)
    for triple in delta.remove1:
        cold_left.remove_triple(triple)
    for triple in delta.remove2:
        cold_right.remove_triple(triple)
    for triple in delta.add1:
        cold_left.add_triple(triple)
    for triple in delta.add2:
        cold_right.add_triple(triple)
    reference = align(
        cold_left, cold_right, ParisConfig(max_iterations=30, score_stationarity=True)
    )
    assert reference.converged
    assert_stores_match(service.state.store, reference.instances)
    # The class cache rides the same property: both directions of the
    # Eq. 17 matrices must equal the cold run's.
    assert_class_matrices_match(service.state.classes12, reference.classes12)
    assert_class_matrices_match(service.state.classes21, reference.classes21)


# ----------------------------------------------------------------------
# incremental relation matrices
# ----------------------------------------------------------------------


class TestIncrementalRelationPass:
    @pytest.fixture()
    def setup(self):
        left, right = family_pair(12)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        return service

    def test_fresh_build_is_bit_identical_to_sequential_pass(self, setup):
        aligner = setup.aligner
        state = setup.state
        view = aligner._view(state.store)
        cache = IncrementalRelationPass(
            state.ontology1,
            state.ontology2,
            view,
            truncation_threshold=0.1,
            max_pairs=10_000,
            bootstrap_theta=0.1,
        )
        fresh = subrelation_pass(
            state.ontology1,
            state.ontology2,
            view,
            truncation_threshold=0.1,
            max_pairs=10_000,
            bootstrap_theta=0.1,
        )
        assert matrix_entries(cache.matrix) == matrix_entries(fresh)

    def test_refresh_tracks_graph_change(self, setup):
        aligner = setup.aligner
        state = setup.state
        view = aligner._view(state.store)
        cache = IncrementalRelationPass(
            state.ontology1,
            state.ontology2,
            view,
            truncation_threshold=0.1,
            max_pairs=10_000,
            bootstrap_theta=0.1,
        )
        # Retract one marriage statement and refresh incrementally.
        triple = Triple(Resource("p5a"), Relation("marriedTo"), Resource("p5b"))
        assert state.ontology1.remove_triple(triple)
        changes = cache.refresh(
            view, changed_statements=[(triple.relation, triple.subject, triple.object)]
        )
        fresh = subrelation_pass(
            state.ontology1,
            state.ontology2,
            view,
            truncation_threshold=0.1,
            max_pairs=10_000,
            bootstrap_theta=0.1,
        )
        for (sub, sup), probability in matrix_entries(fresh).items():
            assert cache.matrix.get(sub, sup) == pytest.approx(probability, abs=1e-12)
        assert all(isinstance(relation, Relation) for relation in changes)

    def test_negative_den_drift_triggers_rebuild(self, setup):
        """A denominator driven to <= 0 by subtraction drift while terms
        remain must rebuild exactly, not install the no-evidence default."""
        aligner = setup.aligner
        state = setup.state
        view = aligner._view(state.store)
        cache = IncrementalRelationPass(
            state.ontology1,
            state.ontology2,
            view,
            truncation_threshold=0.1,
            max_pairs=10_000,
            bootstrap_theta=0.1,
        )
        relation = Relation("marriedTo")
        assert cache._terms[relation]
        # Simulate accumulated drift below zero.
        cache._den[relation] = -1e-16
        statement = next(iter(cache._terms[relation]))
        change = cache.refresh(
            view, changed_statements=[(relation, statement[0], statement[1])]
        )
        fresh = subrelation_pass(
            state.ontology1,
            state.ontology2,
            view,
            truncation_threshold=0.1,
            max_pairs=10_000,
            bootstrap_theta=0.1,
        )
        for relation2, probability in fresh.supers_of(relation).items():
            assert cache.matrix.get(relation, relation2) == pytest.approx(
                probability, abs=1e-12
            )
        assert change.keys() <= {relation}

    def test_capped_relation_falls_back_to_full_recompute(self, setup):
        aligner = setup.aligner
        state = setup.state
        view = aligner._view(state.store)
        cache = IncrementalRelationPass(
            state.ontology1,
            state.ontology2,
            view,
            truncation_threshold=0.1,
            max_pairs=3,  # every family relation exceeds this
            bootstrap_theta=0.1,
        )
        fresh = subrelation_pass(
            state.ontology1,
            state.ontology2,
            view,
            truncation_threshold=0.1,
            max_pairs=3,
            bootstrap_theta=0.1,
        )
        assert matrix_entries(cache.matrix) == matrix_entries(fresh)


class TestNonStationaryExit:
    """Oscillating inputs: the warm loop must stop via cycle detection
    and still leave the service's relation caches consistent with the
    returned store (a resident process reuses them for later deltas)."""

    def test_caches_consistent_after_cycle_exit(self):
        from repro.datasets import yago_dbpedia_pair
        from repro.rdf.triples import Triple

        pair = yago_dbpedia_pair(num_persons=120, num_works=60, seed=17)
        service = AlignmentService.cold_start(
            pair.ontology1, pair.ontology2, ParisConfig(max_iterations=8)
        )
        delta = Delta(
            add1=(
                Triple(Resource("FreshP"), Relation("label"), Literal("Utterly Fresh")),
                Triple(Resource("FreshP"), Relation("wasBornIn"), Resource("FreshTown")),
            ),
            add2=(
                Triple(Resource("fresh_p"), Relation("name"), Literal("Utterly Fresh")),
                Triple(Resource("fresh_p"), Relation("birthPlace"), Resource("fresh_town")),
            ),
        )
        report = service.apply_delta(delta)
        # The noisy fixture oscillates: the warm loop must terminate
        # well below the iteration cap via the cycle guard.
        assert report.converged
        assert report.passes < service.state.config.warm_max_iterations
        # Invariant: whatever the exit path, the incremental matrices
        # equal a fresh relation pass over the returned state.
        aligner = service.aligner
        view = aligner._view(service.state.store)
        for cache, (first, second), reverse in [
            (service._rel12, (pair.ontology1, pair.ontology2), False),
            (service._rel21, (pair.ontology2, pair.ontology1), True),
        ]:
            fresh = subrelation_pass(
                first, second, view,
                truncation_threshold=0.1, max_pairs=10_000,
                reverse=reverse, bootstrap_theta=0.1,
            )
            for sub, sup, probability in fresh.items():
                assert cache.matrix.get(sub, sup) == pytest.approx(
                    probability, abs=1e-9
                ), (sub, sup)
            for sub, sup, probability in cache.matrix.items():
                assert fresh.get(sub, sup) == pytest.approx(
                    probability, abs=1e-9
                ), (sub, sup)


# ----------------------------------------------------------------------
# copy-on-write overlay + restricted-view maintenance
# ----------------------------------------------------------------------

_RESOURCES = [Resource(f"x{i}") for i in range(6)]
_COUNTERPARTS = [Resource(f"y{i}") for i in range(6)]

_op = st.tuples(
    st.sampled_from(_RESOURCES),
    st.sampled_from(_COUNTERPARTS),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


def _seeded_store(entries, threshold=0.1):
    store = EquivalenceStore(threshold)
    for left, right, probability in entries:
        store.set(left, right, probability)
    return store


class TestOverlayStore:
    """The overlay must be observationally equal to an eager copy,
    through both read directions, before and after commit."""

    @settings(max_examples=60, deadline=None)
    @given(
        base_entries=st.lists(_op, max_size=25),
        cleared=st.lists(st.sampled_from(_RESOURCES), max_size=4),
        writes=st.lists(_op, max_size=25),
    )
    def test_overlay_equals_eager_copy(self, base_entries, cleared, writes):
        base = _seeded_store(base_entries)
        pristine = base.copy()
        eager = base.copy()
        overlay = base.overlay()
        for left in cleared:
            eager.clear_left(left)
            overlay.clear_left(left)
        for left, right, probability in writes:
            eager.set(left, right, probability)
            overlay.set(left, right, probability)
        # The base is untouched until commit.
        assert base.max_difference(pristine) == 0.0
        # Forward and backward reads agree with the eager copy.
        for left in _RESOURCES:
            assert dict(overlay.equals_of(left)) == dict(eager.equals_of(left))
            for right in _COUNTERPARTS:
                assert overlay.get(left, right) == eager.get(left, right)
        for right in _COUNTERPARTS:
            assert dict(overlay.equals_of_right(right)) == dict(
                eager.equals_of_right(right)
            )
        # Commit folds into the base in place and both directions match.
        committed = overlay.commit()
        assert committed is base
        assert committed.max_difference(eager) == 0.0
        for right in _COUNTERPARTS:
            assert dict(committed.equals_of_right(right)) == dict(
                eager.equals_of_right(right)
            )

    def test_pairs_touched_counts_only_touched_rows(self):
        base = _seeded_store(
            [(Resource(f"x{i}"), Resource(f"y{i}"), 0.9) for i in range(100)]
        )
        overlay = base.overlay()
        overlay.clear_left(Resource("x3"))
        overlay.set(Resource("x3"), Resource("y3"), 0.8)
        assert overlay.pairs_touched == 2
        assert overlay.pairs_touched < len(base)


class TestRestrictedViewMaintainer:
    """The maintained view must equal ``restricted_to_maximal()`` (and
    both maximal assignments) after arbitrary row replacements."""

    @settings(max_examples=60, deadline=None)
    @given(
        base_entries=st.lists(_op, max_size=25),
        rounds=st.lists(
            st.tuples(
                st.lists(st.sampled_from(_RESOURCES), min_size=1, max_size=3),
                st.lists(_op, max_size=10),
            ),
            max_size=3,
        ),
    )
    def test_maintained_view_equals_fresh_restriction(self, base_entries, rounds):
        store = _seeded_store(base_entries)
        maintainer = RestrictedViewMaintainer(store)
        for cleared, writes in rounds:
            overlay = store.overlay()
            for left in cleared:
                overlay.clear_left(left)
            for left, right, probability in writes:
                overlay.set(left, right, probability)
            changes = maintainer.apply(overlay)
            overlay.commit()
            fresh = store.restricted_to_maximal()
            assert maintainer.view_store.max_difference(fresh) == 0.0
            assert maintainer.assignment12 == store.maximal_assignment()
            assert maintainer.assignment21 == store.maximal_assignment(reverse=True)
            for (left, right), (old, new) in changes.items():
                assert old != new
                assert fresh.get(left, right) == new


# ----------------------------------------------------------------------
# score-stationarity mode (the cold reference the service relies on)
# ----------------------------------------------------------------------


class TestScoreStationarity:
    def test_reaches_exact_stationarity(self, person_pair):
        from repro.core.aligner import ParisAligner

        config = ParisConfig(score_stationarity=True, max_iterations=30)
        aligner = ParisAligner(person_pair.ontology1, person_pair.ontology2, config)
        result = aligner.align()
        assert result.converged
        # The declared fixpoint must actually be one: a further full
        # instance pass from the final state, against the final
        # relation matrices, must not move a single score.
        view = aligner._view(result.instances)
        replayed = aligner._instance_pass(view, result.relations12, result.relations21)
        assert result.instances.max_difference(replayed) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ParisConfig(warm_tolerance=1.5)
        with pytest.raises(ValueError):
            ParisConfig(warm_full_pass_fraction=0.0)
        with pytest.raises(ValueError):
            ParisConfig(warm_max_iterations=0)
