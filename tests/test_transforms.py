"""Unit tests for the structural transforms (reify/dereify).

These address the paper's named limitation: event-entity modelling vs
direct-relation modelling (Section 7).  The key end-to-end check: a
pair that plain PARIS cannot align becomes alignable after dereifying
the event-style side.
"""

import pytest

from repro import OntologyBuilder, align
from repro.rdf.terms import Literal, Relation, Resource
from repro.rdf.transforms import copy_ontology, dereify, reify


@pytest.fixture()
def direct_onto():
    """Relation-style modelling: wonAward(person, award)."""
    return (
        OntologyBuilder("direct")
        .value("p1", "name", "Marie")
        .fact("p1", "wonAward", "nobel")
        .value("nobel", "awardName", "Nobel Prize")
        .value("p2", "name", "Pierre")
        .fact("p2", "wonAward", "nobel")
        .build()
    )


@pytest.fixture()
def event_onto():
    """Event-style modelling: winningEvent with winner/award/year."""
    return (
        OntologyBuilder("events")
        .value("x1", "label", "Marie")
        .value("x2", "label", "Pierre")
        .value("a1", "title", "Nobel Prize")
        .type("e1", "WinningEvent")
        .fact("e1", "winner", "x1")
        .fact("e1", "award", "a1")
        .value("e1", "year", "1903")
        .type("e2", "WinningEvent")
        .fact("e2", "winner", "x2")
        .fact("e2", "award", "a1")
        .value("e2", "year", "1903")
        .build()
    )


class TestCopy:
    def test_copy_is_deep_and_equal(self, direct_onto):
        duplicate = copy_ontology(direct_onto)
        assert set(duplicate.triples()) == set(direct_onto.triples())
        duplicate.add(Resource("new"), Relation("r"), Resource("thing"))
        assert duplicate.num_facts == direct_onto.num_facts + 1

    def test_copy_preserves_schema(self):
        onto = (
            OntologyBuilder("t")
            .type("a", "C")
            .subclass("C", "D")
            .subproperty("r", "s")
            .build()
        )
        duplicate = copy_ontology(onto, name="t2")
        assert duplicate.name == "t2"
        assert Resource("a") in duplicate.instances_of(Resource("C"))
        assert Resource("D") in duplicate.superclasses_of(Resource("C"))
        assert Relation("s") in duplicate.superproperties_of(Relation("r"))


class TestDereify:
    def test_creates_direct_statements(self, event_onto):
        flat = dereify(
            event_onto,
            event_class=Resource("WinningEvent"),
            subject_relation=Relation("winner"),
            object_relation=Relation("award"),
            new_relation=Relation("won"),
        )
        assert flat.has(Resource("x1"), Relation("won"), Resource("a1"))
        assert flat.has(Resource("x2"), Relation("won"), Resource("a1"))

    def test_drops_event_entities_by_default(self, event_onto):
        flat = dereify(
            event_onto,
            Resource("WinningEvent"),
            Relation("winner"),
            Relation("award"),
            Relation("won"),
        )
        assert Resource("e1") not in flat.instances
        assert flat.num_statements(Relation("winner")) == 0

    def test_keep_events_mode(self, event_onto):
        flat = dereify(
            event_onto,
            Resource("WinningEvent"),
            Relation("winner"),
            Relation("award"),
            Relation("won"),
            drop_events=False,
        )
        assert Resource("e1") in flat.instances
        assert flat.has(Resource("x1"), Relation("won"), Resource("a1"))

    def test_copies_event_attributes(self, event_onto):
        flat = dereify(
            event_onto,
            Resource("WinningEvent"),
            Relation("winner"),
            Relation("award"),
            Relation("won"),
            copy_relations=[(Relation("year"), Relation("wonInYear"))],
        )
        assert flat.has(Resource("x1"), Relation("wonInYear"), Literal("1903"))

    def test_untouched_statements_survive(self, event_onto):
        flat = dereify(
            event_onto,
            Resource("WinningEvent"),
            Relation("winner"),
            Relation("award"),
            Relation("won"),
        )
        assert flat.has(Resource("x1"), Relation("label"), Literal("Marie"))


class TestReify:
    def test_round_trip(self, direct_onto):
        reified = reify(
            direct_onto,
            relation=Relation("wonAward"),
            event_class=Resource("WinEvent"),
            subject_relation=Relation("who"),
            object_relation=Relation("what"),
        )
        assert reified.num_statements(Relation("wonAward")) == 0
        assert len(reified.instances_of(Resource("WinEvent"))) == 2
        back = dereify(
            reified,
            Resource("WinEvent"),
            Relation("who"),
            Relation("what"),
            Relation("wonAward"),
        )
        assert back.has(Resource("p1"), Relation("wonAward"), Resource("nobel"))
        assert back.has(Resource("p2"), Relation("wonAward"), Resource("nobel"))

    def test_reify_deterministic_event_ids(self, direct_onto):
        first = reify(direct_onto, Relation("wonAward"), Resource("E"),
                      Relation("who"), Relation("what"))
        second = reify(direct_onto, Relation("wonAward"), Resource("E"),
                       Relation("who"), Relation("what"))
        assert set(first.triples()) == set(second.triples())


class TestStructuralHeterogeneityEndToEnd:
    def test_dereification_enables_alignment(self, direct_onto, event_onto):
        """The paper's limitation, repaired by the transform: the award
        link is invisible to PARIS before dereification and aligned
        after."""
        flat = dereify(
            event_onto,
            Resource("WinningEvent"),
            Relation("winner"),
            Relation("award"),
            Relation("won"),
        )
        result = align(direct_onto, flat)
        assert result.assignment12[Resource("p1")][0] == Resource("x1")
        assert result.assignment12[Resource("nobel")][0] == Resource("a1")
        assert result.relations12.get(Relation("wonAward"), Relation("won")) > 0.5
