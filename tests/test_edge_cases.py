"""Edge-case and failure-injection tests across the stack.

Unicode stress, reflexive and self-loop statements, pathological
ontologies (cyclic hierarchies, duplicated values everywhere), and
partially corrupt input files: the library must either work or fail
with a clear error — never crash obscurely or return out-of-range
probabilities.
"""

import pytest

from repro import (
    NormalizedIdentitySimilarity,
    OntologyBuilder,
    ParisConfig,
    align,
)
from repro.rdf import ntriples
from repro.rdf.closure import deductive_closure
from repro.rdf.ntriples import NTriplesError
from repro.rdf.terms import Literal, Relation, Resource


class TestUnicode:
    def test_unicode_literals_roundtrip(self):
        onto = (
            OntologyBuilder("t")
            .value("a", "label", "Sugata Sanshirô 姿三四郎")
            .value("b", "label", "Fürstenfeldbruck — čeština")
            .build()
        )
        loaded = ntriples.loads(ntriples.dumps(onto))
        assert Literal("Sugata Sanshirô 姿三四郎") in loaded.literals

    def test_unicode_alignment(self):
        left = OntologyBuilder("l").value("a", "n", "Č愛☂").build()
        right = OntologyBuilder("r").value("x", "m", "Č愛☂").build()
        result = align(left, right)
        assert result.assignment12[Resource("a")][0] == Resource("x")

    def test_unicode_resource_names(self):
        left = OntologyBuilder("l").value("résumé:éntity", "n", "v").build()
        right = OntologyBuilder("r").value("другой", "m", "v").build()
        result = align(left, right)
        assert len(result.assignment12) == 1


class TestPathologicalStructures:
    def test_self_loop_statement(self):
        onto = OntologyBuilder("t").fact("a", "knows", "a").build()
        assert onto.has(Resource("a"), Relation("knows"), Resource("a"))
        assert onto.num_statements(Relation("knows")) == 1
        # the inverse self-loop is the same statement seen backwards
        assert onto.has(Resource("a"), Relation("knows").inverse, Resource("a"))

    def test_cyclic_class_hierarchy_closure_terminates(self):
        onto = (
            OntologyBuilder("t")
            .subclass("A", "B")
            .subclass("B", "C")
            .subclass("C", "A")
            .type("x", "A")
            .build()
        )
        deductive_closure(onto)
        # x ends up in every class of the cycle
        for cls in ("A", "B", "C"):
            assert Resource("x") in onto.instances_of(Resource(cls))

    def test_alignment_with_cyclic_hierarchies(self):
        left = (
            OntologyBuilder("l")
            .subclass("LA", "LB")
            .subclass("LB", "LA")
            .type("a", "LA")
            .value("a", "n", "v")
            .build()
        )
        right = (
            OntologyBuilder("r")
            .type("x", "RA")
            .value("x", "m", "v")
            .build()
        )
        result = align(left, right)  # must not hang or crash
        assert result.assignment12[Resource("a")][0] == Resource("x")

    def test_everything_shares_one_value(self):
        """A value shared by all instances (like a country of birth)
        must not produce confident matches on its own."""
        builder1 = OntologyBuilder("l")
        builder2 = OntologyBuilder("r")
        for i in range(12):
            builder1.value(f"a{i}", "n", "common")
            builder2.value(f"b{i}", "m", "common")
        result = align(builder1.build(), builder2.build())
        for _l, _r, probability in result.instances.items():
            assert probability < 0.5

    def test_instance_with_huge_fanout(self):
        """One subject with many objects: functionality collapses and
        the relation stops being strong evidence."""
        builder1 = OntologyBuilder("l")
        builder2 = OntologyBuilder("r")
        builder1.value("hub", "n", "hub-label")
        builder2.value("bub", "m", "hub-label")
        for i in range(50):
            builder1.fact("hub", "linksTo", f"a{i}")
            builder2.fact("bub", "linksTo2", f"b{i}")
            builder1.value(f"a{i}", "n", f"v{i}")
            builder2.value(f"b{i}", "m", f"v{i}")
        result = align(builder1.build(), builder2.build(),
                       ParisConfig(max_iterations=3))
        # all leaves still match through their unique labels
        assert result.assignment12[Resource("a7")][0] == Resource("b7")

    def test_empty_string_valued_literal_rejected_by_terms(self):
        # empty literal values are allowed (they occur in dirty data)
        literal = Literal("")
        assert literal.value == ""
        # but an all-empty pair must not explode the normalized measure
        sim = NormalizedIdentitySimilarity()
        assert sim(literal, Literal("")) == 1.0


class TestCorruptInputs:
    def test_partially_corrupt_ntriples_reports_line(self, tmp_path):
        path = tmp_path / "bad.nt"
        path.write_text(
            "<a> <r> <b> .\n"
            "garbage line here\n"
            "<c> <r> <d> .\n"
        )
        with pytest.raises(NTriplesError) as exc:
            ntriples.read_ntriples(path)
        assert "line 2" in str(exc.value)

    def test_truncated_literal(self):
        with pytest.raises(NTriplesError):
            ntriples.loads('<a> <r> "never closed .\n')

    def test_crlf_line_endings_accepted(self):
        loaded = ntriples.loads('<a> <r> <b> .\r\n<c> <r> "x" .\r\n')
        assert loaded.num_facts == 2

    def test_whitespace_variations(self):
        loaded = ntriples.loads('  <a>   <r>\t<b>   .  \n')
        assert loaded.has(Resource("a"), Relation("r"), Resource("b"))


class TestDegenerateAlignerInputs:
    def test_single_instance_each(self):
        left = OntologyBuilder("l").value("a", "n", "v").build()
        right = OntologyBuilder("r").value("x", "m", "v").build()
        result = align(left, right)
        assert result.assignment12[Resource("a")][0] == Resource("x")

    def test_literal_only_overlap_no_structure(self):
        left = OntologyBuilder("l").value("a", "n", "v1").value("a", "n", "v2").build()
        right = OntologyBuilder("r").value("x", "m", "v1").value("x", "m", "v2").build()
        result = align(left, right)
        assert result.instances.get(Resource("a"), Resource("x")) > 0.1

    def test_max_iterations_one(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right, ParisConfig(max_iterations=1))
        assert result.num_iterations == 1
        assert len(result.assignment12) == 2  # literal evidence suffices

    def test_theta_extremes(self, tiny_pair):
        left, right = tiny_pair
        low = align(left, right, ParisConfig(theta=0.001))
        high = align(left, right, ParisConfig(theta=0.9))
        assert {l.name for l in low.assignment12} >= {l.name for l in high.assignment12}
