"""Unit tests for the N-Triples and TSV codecs."""

import io

import pytest

from repro.rdf import ntriples, tsv
from repro.rdf.builder import OntologyBuilder
from repro.rdf.ntriples import NTriplesError, parse_line
from repro.rdf.terms import Literal, Relation, Resource
from repro.rdf.tsv import TsvError


@pytest.fixture()
def onto():
    return (
        OntologyBuilder("demo")
        .fact("Elvis", "bornIn", "Tupelo")
        .value("Elvis", "rdfs:label", 'Elvis "The King" Presley')
        .value("Elvis", "born", Literal("1935-01-08", datatype="date"))
        .type("Elvis", "singer")
        .subclass("singer", "person")
        .subproperty("bornIn", "locatedAt")
        .build()
    )


class TestNTriplesParsing:
    def test_resource_object(self):
        parsed = parse_line("<a> <r> <b> .")
        assert parsed == ("a", "r", Resource("b"))

    def test_literal_object(self):
        parsed = parse_line('<a> <r> "hello" .')
        assert parsed[2] == Literal("hello")

    def test_literal_with_datatype(self):
        parsed = parse_line(
            '<a> <r> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        )
        assert parsed[2] == Literal("5")
        assert parsed[2].datatype == "integer"

    def test_literal_with_language_tag(self):
        parsed = parse_line('<a> <r> "bonjour"@fr .')
        assert parsed[2] == Literal("bonjour")

    def test_escapes(self):
        parsed = parse_line('<a> <r> "line\\nbreak \\"quoted\\" tab\\t" .')
        assert parsed[2].value == 'line\nbreak "quoted" tab\t'

    def test_unicode_escape(self):
        parsed = parse_line('<a> <r> "\\u00e9" .')
        assert parsed[2].value == "é"

    def test_comment_and_blank_lines(self):
        assert parse_line("# comment") is None
        assert parse_line("   ") is None

    @pytest.mark.parametrize(
        "bad",
        [
            "<a> <r> <b>",          # missing dot
            "a <r> <b> .",          # bare subject
            "<a> r <b> .",          # bare predicate
            "<a> <r> .",            # missing object
            '<a> <r> "unterminated .',
            '<a> <r> "x" junk .',
        ],
    )
    def test_malformed_lines_raise(self, bad):
        with pytest.raises(NTriplesError):
            parse_line(bad, line_number=3)

    def test_error_carries_line_number(self):
        with pytest.raises(NTriplesError) as exc:
            ntriples.loads("<a> <r> <b>\n")
        assert "line 1" in str(exc.value)


class TestNTriplesRoundTrip:
    def test_round_trip_preserves_statements(self, onto):
        text = ntriples.dumps(onto)
        loaded = ntriples.loads(text, name="demo")
        assert loaded.has(Resource("Elvis"), Relation("bornIn"), Resource("Tupelo"))
        assert Literal('Elvis "The King" Presley') in loaded.literals
        assert Resource("Elvis") in loaded.instances_of(Resource("singer"))
        assert Resource("person") in loaded.superclasses_of(Resource("singer"))
        assert Relation("locatedAt") in loaded.superproperties_of(Relation("bornIn"))

    def test_round_trip_counts(self, onto):
        loaded = ntriples.loads(ntriples.dumps(onto))
        assert loaded.num_facts == onto.num_facts
        assert loaded.num_type_statements == onto.num_type_statements

    def test_schema_uris_used_on_output(self, onto):
        text = ntriples.dumps(onto)
        assert "rdf-syntax-ns#type" in text
        assert "rdf-schema#subClassOf" in text
        assert "rdf-schema#label" in text

    def test_file_round_trip(self, onto, tmp_path):
        path = tmp_path / "demo.nt"
        ntriples.write_ntriples(onto, path)
        loaded = ntriples.read_ntriples(path)
        assert loaded.name == "demo"
        assert loaded.num_facts == onto.num_facts


class TestTsv:
    def test_round_trip(self, onto):
        loaded = tsv.loads(tsv.dumps(onto), name="demo")
        assert loaded.has(Resource("Elvis"), Relation("bornIn"), Resource("Tupelo"))
        assert Literal('Elvis "The King" Presley') in loaded.literals
        assert Resource("Elvis") in loaded.instances_of(Resource("singer"))
        assert Resource("person") in loaded.superclasses_of(Resource("singer"))
        assert Relation("locatedAt") in loaded.superproperties_of(Relation("bornIn"))

    def test_literals_are_quoted(self, onto):
        text = tsv.dumps(onto)
        assert '"Elvis \\"The King\\" Presley"' in text

    def test_tab_in_literal_escaped(self):
        onto = OntologyBuilder("t").value("a", "r", "x\ty").build()
        loaded = tsv.loads(tsv.dumps(onto))
        assert Literal("x\ty") in loaded.literals

    def test_wrong_field_count_raises(self):
        with pytest.raises(TsvError):
            tsv.loads("a\tb\n")

    def test_comments_skipped(self):
        loaded = tsv.loads("# header\na\tr\tb\n")
        assert loaded.num_facts == 1

    def test_file_round_trip(self, onto, tmp_path):
        path = tmp_path / "demo.tsv"
        tsv.write_tsv(onto, path)
        loaded = tsv.read_tsv(path)
        assert loaded.num_facts == onto.num_facts

    def test_inverse_relation_names_round_trip(self):
        onto = OntologyBuilder("t").fact("a", "r^-1", "b").build()
        loaded = tsv.loads(tsv.dumps(onto))
        # r^-1(a, b) is stored as r(b, a); serialization is canonical.
        assert loaded.has(Resource("b"), Relation("r"), Resource("a"))


def test_cross_codec_equivalence(onto):
    """Both codecs must preserve identical content."""
    via_nt = ntriples.loads(ntriples.dumps(onto))
    via_tsv = tsv.loads(tsv.dumps(onto))
    assert set(via_nt.triples()) == set(via_tsv.triples())
