"""Tests for the sharded parallel instance-pass engine.

The heart of the engine is its guarantee: for any worker count, shard
size and backend, the scores are *equal* to the sequential engine's.
These tests enforce it on the unit level (partitioner, single pass,
merge order) and end-to-end on the existing integration fixtures
(``workers=4`` against the session-cached sequential results).
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro import ParisConfig, align
from repro.core.equivalence import instance_equivalence_pass
from repro.core.functionality import FunctionalityOracle
from repro.core.literal_index import LiteralIndex
from repro.core.matrix import SubsumptionMatrix
from repro.core.parallel import (
    BACKENDS,
    parallel_instance_equivalence_pass,
    parallel_score_instances,
    parallel_subrelation_pass,
    partition_instances,
    partition_ordered,
)
from repro.core.store import EquivalenceStore
from repro.core.subrelations import subrelation_pass
from repro.core.view import EquivalenceView
from repro.literals import IdentitySimilarity
from repro.rdf.terms import Resource


#: Under fork, process workers inherit the parent's hash seed and thus
#: its set-iteration orders, so the process backend is bit-exact; under
#: spawn the guarantee is only ≈1 ulp (see repro/core/parallel.py).
FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()


def store_scores(store):
    """All stored scores as a comparable dict keyed on (left, right)."""
    return {(left, right): p for left, right, p in store.items()}


def assert_stores_match(parallel, sequential, exact=True):
    actual, expected = store_scores(parallel), store_scores(sequential)
    if exact:
        assert actual == expected
        return
    assert actual.keys() == expected.keys()
    for key, probability in expected.items():
        assert abs(actual[key] - probability) <= 1e-12, key


def reverse_scores(store):
    """Scores read through the backward direction of the store."""
    scores = {}
    for left, right, _p in store.items():
        for other, p in store.equals_of_right(right).items():
            scores[(other, right)] = p
    return scores


class TestPartitioner:
    def test_covers_all_instances_exactly_once(self):
        instances = {Resource(f"i{n}") for n in range(23)}
        shards = partition_instances(instances, workers=4)
        flat = [x for shard in shards for x in shard]
        assert len(flat) == len(instances)
        assert set(flat) == instances

    def test_deterministic_and_sorted(self):
        instances = {Resource(f"i{n}") for n in range(50)}
        first = partition_instances(instances, workers=3)
        second = partition_instances(list(instances), workers=3)
        assert first == second
        flat = [x.name for shard in first for x in shard]
        assert flat == sorted(flat)

    def test_explicit_shard_size(self):
        instances = {Resource(f"i{n}") for n in range(10)}
        shards = partition_instances(instances, workers=2, shard_size=3)
        assert [len(s) for s in shards] == [3, 3, 3, 1]

    def test_empty_input(self):
        assert partition_instances(set(), workers=2) == []

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            partition_instances({Resource("a")}, workers=0)
        with pytest.raises(ValueError):
            partition_instances({Resource("a")}, workers=1, shard_size=0)


@pytest.fixture(scope="module")
def pass_inputs():
    """Frozen first-iteration inputs over a mid-sized benchmark pair."""
    from repro.datasets import yago_dbpedia_pair

    pair = yago_dbpedia_pair(num_persons=120, num_works=60, seed=17)
    similarity = IdentitySimilarity()
    view = EquivalenceView(
        EquivalenceStore(),
        LiteralIndex(pair.ontology2, similarity),
        LiteralIndex(pair.ontology1, similarity),
    )
    return (
        pair.ontology1,
        pair.ontology2,
        view,
        FunctionalityOracle(pair.ontology1),
        FunctionalityOracle(pair.ontology2),
        SubsumptionMatrix.bootstrap(0.1),
        SubsumptionMatrix.bootstrap(0.1),
        0.1,
    )


class TestParallelPass:
    def test_single_worker_matches_sequential_bitwise(self, pass_inputs):
        sequential = instance_equivalence_pass(*pass_inputs)
        fallback = parallel_instance_equivalence_pass(*pass_inputs, workers=1)
        assert store_scores(fallback) == store_scores(sequential)

    def test_sharded_single_worker_matches_sequential(self, pass_inputs):
        sequential = instance_equivalence_pass(*pass_inputs)
        sharded = parallel_instance_equivalence_pass(
            *pass_inputs, workers=1, shard_size=7
        )
        assert store_scores(sharded) == store_scores(sequential)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [2, 4])
    def test_backends_match_sequential_exactly(self, pass_inputs, backend, workers):
        sequential = instance_equivalence_pass(*pass_inputs)
        parallel = parallel_instance_equivalence_pass(
            *pass_inputs, workers=workers, backend=backend
        )
        assert_stores_match(
            parallel,
            sequential,
            exact=backend == "thread" or FORK_AVAILABLE,
        )

    def test_both_directions_filled(self, pass_inputs):
        sequential = instance_equivalence_pass(*pass_inputs)
        parallel = parallel_instance_equivalence_pass(
            *pass_inputs, workers=2, backend="thread"
        )
        assert reverse_scores(parallel) == reverse_scores(sequential)

    def test_shard_size_does_not_change_scores(self, pass_inputs):
        baseline = parallel_instance_equivalence_pass(
            *pass_inputs, workers=2, backend="thread"
        )
        for shard_size in (1, 5, 1000):
            other = parallel_instance_equivalence_pass(
                *pass_inputs, workers=2, shard_size=shard_size, backend="thread"
            )
            assert store_scores(other) == store_scores(baseline)

    def test_maximal_assignment_identical(self, pass_inputs):
        sequential = instance_equivalence_pass(*pass_inputs)
        parallel = parallel_instance_equivalence_pass(
            *pass_inputs, workers=4, backend="thread"
        )
        assert parallel.maximal_assignment() == sequential.maximal_assignment()
        assert parallel.maximal_assignment(reverse=True) == sequential.maximal_assignment(
            reverse=True
        )

    def test_invalid_backend_rejected(self, pass_inputs):
        with pytest.raises(ValueError):
            parallel_instance_equivalence_pass(*pass_inputs, workers=2, backend="mpi")

    def test_invalid_worker_count_rejected(self, pass_inputs):
        with pytest.raises(ValueError):
            parallel_instance_equivalence_pass(*pass_inputs, workers=0)

    def test_empty_ontology(self, pass_inputs):
        from repro.rdf.ontology import Ontology

        _, ontology2, view, fun1, fun2, rel12, rel21, theta = pass_inputs
        empty = Ontology("empty")
        store = parallel_instance_equivalence_pass(
            empty, ontology2, view, fun1, fun2, rel12, rel21, theta,
            workers=2, backend="thread",
        )
        assert len(store) == 0


def matrix_scores(matrix, sub_ontology):
    """Explicit entries plus per-sub defaults, for exact comparison.

    Defaults are enumerated over *every* relation of the sub-side
    ontology, not just those with explicit entries — a relation whose
    whole row is the no-evidence bootstrap default (``set_sub_default``
    only) must also compare equal between sequential and sharded runs.
    """
    return (
        {(sub, sup): p for sub, sup, p in matrix.items()},
        {
            relation: matrix.sub_default(relation)
            for relation in sub_ontology.relations(include_inverses=True)
        },
    )


@pytest.fixture(scope="module")
def relation_pass_inputs(pass_inputs):
    """Relation-pass inputs over a *filled* view (bootstrap equivalences),
    so Eq. 12 has real evidence to aggregate."""
    ontology1, ontology2, view, fun1, fun2, rel12, rel21, theta = pass_inputs
    bootstrap = instance_equivalence_pass(*pass_inputs)
    filled_view = EquivalenceView(
        bootstrap.restricted_to_maximal(),
        view._right_index,
        view._left_index,
    )
    return ontology1, ontology2, filled_view


class TestParallelRelationPass:
    """The relation pass shards with the same equivalence guarantee as
    the instance pass (ROADMAP "next steps" item)."""

    def kwargs(self):
        return dict(truncation_threshold=0.1, max_pairs=10_000, bootstrap_theta=0.1)

    @pytest.mark.parametrize("reverse", [False, True])
    def test_single_worker_matches_sequential_bitwise(self, relation_pass_inputs, reverse):
        ontology1, ontology2, view = relation_pass_inputs
        first, second = (ontology2, ontology1) if reverse else (ontology1, ontology2)
        sequential = subrelation_pass(first, second, view, reverse=reverse, **self.kwargs())
        fallback = parallel_subrelation_pass(
            first, second, view, reverse=reverse, workers=1, **self.kwargs()
        )
        assert matrix_scores(fallback, first) == matrix_scores(sequential, first)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("reverse", [False, True])
    def test_backends_match_sequential(self, relation_pass_inputs, backend, workers, reverse):
        ontology1, ontology2, view = relation_pass_inputs
        first, second = (ontology2, ontology1) if reverse else (ontology1, ontology2)
        sequential = subrelation_pass(first, second, view, reverse=reverse, **self.kwargs())
        parallel = parallel_subrelation_pass(
            first, second, view, reverse=reverse,
            workers=workers, backend=backend, **self.kwargs()
        )
        if backend == "thread" or FORK_AVAILABLE:
            assert matrix_scores(parallel, first) == matrix_scores(sequential, first)
        else:
            entries, defaults = matrix_scores(sequential, first)
            for key, probability in entries.items():
                assert abs(parallel.get(*key) - probability) <= 1e-12, key
            assert defaults == matrix_scores(parallel, first)[1]

    def test_sharded_single_worker_matches_sequential(self, relation_pass_inputs):
        ontology1, ontology2, view = relation_pass_inputs
        sequential = subrelation_pass(ontology1, ontology2, view, **self.kwargs())
        sharded = parallel_subrelation_pass(
            ontology1, ontology2, view, workers=1, shard_size=3, **self.kwargs()
        )
        assert matrix_scores(sharded, ontology1) == matrix_scores(sequential, ontology1)

    def test_invalid_arguments(self, relation_pass_inputs):
        ontology1, ontology2, view = relation_pass_inputs
        with pytest.raises(ValueError):
            parallel_subrelation_pass(
                ontology1, ontology2, view, workers=0, **self.kwargs()
            )
        with pytest.raises(ValueError):
            parallel_subrelation_pass(
                ontology1, ontology2, view, workers=2, backend="mpi", **self.kwargs()
            )

    def test_full_align_with_workers_matches_sequential(self, person_pair, person_result):
        """End-to-end: both passes sharded, thread backend, exact."""
        config = ParisConfig(workers=2, parallel_backend="thread")
        parallel = align(person_pair.ontology1, person_pair.ontology2, config)
        assert store_scores(parallel.instances) == store_scores(person_result.instances)
        assert matrix_scores(parallel.relations12, person_pair.ontology1) == matrix_scores(
            person_result.relations12, person_pair.ontology1
        )
        assert matrix_scores(parallel.relations21, person_pair.ontology2) == matrix_scores(
            person_result.relations21, person_pair.ontology2
        )


class TestScoredSubsets:
    """parallel_score_instances — the warm-start fixpoint's shard unit."""

    def test_matches_sequential_scoring(self, pass_inputs):
        from repro.core.equivalence import ordered_instances, score_instances

        ontology1 = pass_inputs[0]
        subset = ordered_instances(ontology1.instances)[:40]
        sequential = score_instances(subset, *pass_inputs)
        for workers, backend in [(1, "process"), (2, "thread"), (2, "process")]:
            entries = parallel_score_instances(
                subset, *pass_inputs, workers=workers, backend=backend
            )
            if backend == "thread" or workers == 1 or FORK_AVAILABLE:
                assert entries == sequential
            else:
                assert len(entries) == len(sequential)

    def test_partition_ordered_preserves_order(self):
        items = list(range(17))
        shards = partition_ordered(items, workers=3, shard_size=5)
        assert [len(s) for s in shards] == [5, 5, 5, 2]
        assert [x for shard in shards for x in shard] == items
        assert partition_ordered([], workers=2) == []


class TestConfigKnobs:
    def test_defaults_are_sequential(self):
        config = ParisConfig()
        assert config.workers == 1
        assert config.shard_size is None
        assert config.parallel_backend == "process"

    def test_validation(self):
        with pytest.raises(ValueError):
            ParisConfig(workers=0)
        with pytest.raises(ValueError):
            ParisConfig(shard_size=0)
        with pytest.raises(ValueError):
            ParisConfig(parallel_backend="gpu")


class TestIntegrationFixtures:
    """workers=4 matches the session-cached sequential results exactly."""

    def test_person_fixture_exact(self, person_pair, person_result):
        config = ParisConfig(workers=4)
        parallel = align(person_pair.ontology1, person_pair.ontology2, config)
        assert_stores_match(
            parallel.instances, person_result.instances, exact=FORK_AVAILABLE
        )
        if FORK_AVAILABLE:
            assert parallel.assignment12 == person_result.assignment12
            assert parallel.assignment21 == person_result.assignment21

    def test_kb_fixture_exact(self, kb_pair, kb_result):
        config = ParisConfig(
            max_iterations=4, convergence_threshold=0.0, workers=4
        )
        parallel = align(kb_pair.ontology1, kb_pair.ontology2, config)
        assert_stores_match(
            parallel.instances, kb_result.instances, exact=FORK_AVAILABLE
        )
        if FORK_AVAILABLE:
            assert parallel.assignment12 == kb_result.assignment12
        assert parallel.converged == kb_result.converged

    def test_thread_backend_full_align_exact(self, person_pair, person_result):
        config = ParisConfig(workers=2, parallel_backend="thread", shard_size=11)
        parallel = align(person_pair.ontology1, person_pair.ontology2, config)
        assert store_scores(parallel.instances) == store_scores(
            person_result.instances
        )
