"""Property-based tests over structured random ontology pairs.

Unlike ``test_core_properties`` (literal-only facts), these worlds have
resource-to-resource links, classes and a derived noisy copy — closer
to the real benchmarks — and check deeper invariants:

* the renamed-copy identity is recovered through *structure alone*
  (anchor instances carry literals, the rest only links),
* serialization round trips never change alignment output,
* reify → dereify is the identity on the affected statements,
* the error report is consistent with the PRF counts.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import OntologyBuilder, ParisConfig, align
from repro.analysis import classify_errors
from repro.evaluation.gold import GoldStandard
from repro.evaluation.metrics import evaluate_instances
from repro.rdf import ntriples
from repro.rdf.terms import Relation, Resource
from repro.rdf.transforms import dereify, reify


def build_structured_pair(num_anchors: int, links):
    """A world of ``num_anchors`` literal-carrying anchors plus hub
    entities identified only through links from anchors."""
    builder1 = OntologyBuilder("left")
    builder2 = OntologyBuilder("right")
    values = [f"value-{i}" for i in range(num_anchors)]
    for i, value in enumerate(values):
        builder1.value(f"a{i}", "Lkey", value)
        builder2.value(f"b{i}", "Rkey", value)
    for anchor, hub in links:
        anchor %= num_anchors
        builder1.fact(f"a{anchor}", "LmemberOf", f"ahub{hub}")
        builder2.fact(f"b{anchor}", "RmemberOf", f"bhub{hub}")
        builder1.type(f"ahub{hub}", "LHub")
        builder2.type(f"bhub{hub}", "RHub")
    return builder1.build(), builder2.build()


link_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=7),
              st.integers(min_value=0, max_value=2)),
    min_size=1,
    max_size=12,
)


@given(num_anchors=st.integers(min_value=2, max_value=8), links=link_lists)
@settings(max_examples=30, deadline=None)
def test_hubs_matched_only_with_shared_members(num_anchors, links):
    """Hub entities have no literals; any hub match must be supported
    by at least one shared member (a hub with a single member that also
    belongs to a bigger hub is *genuinely* ambiguous, so exact identity
    cannot be required — but unsupported matches can never happen)."""
    left, right = build_structured_pair(num_anchors, links)
    membership = {}
    for anchor, hub in links:
        anchor %= num_anchors
        membership.setdefault(f"ahub{hub}", set()).add(anchor)
        membership.setdefault(f"bhub{hub}", set()).add(anchor)
    result = align(left, right, ParisConfig(max_iterations=4))
    for entity, (counterpart, _probability) in result.assignment12.items():
        if entity.name.startswith("ahub"):
            assert counterpart.name.startswith("bhub")
            shared = membership[entity.name] & membership[counterpart.name]
            assert shared, f"{entity} matched {counterpart} without shared members"


@given(num_anchors=st.integers(min_value=2, max_value=8))
@settings(max_examples=20, deadline=None)
def test_unambiguous_hubs_recovered_exactly(num_anchors):
    """With disjoint hub memberships (no ambiguity), hubs must be
    matched to their exact counterparts through structure alone."""

    links = [(i, i % 3) for i in range(num_anchors)]
    left, right = build_structured_pair(num_anchors, links)
    # Hubs are two propagation hops from any literal: they acquire
    # scores only in iteration 3, after the anchors' own scores firm up
    # in iteration 2.  The paper's change criterion can declare
    # convergence before that on tiny worlds, so run fixed iterations
    # (exactly like the paper's Table 3 protocol).
    config = ParisConfig(max_iterations=4, convergence_threshold=0.0,
                         detect_cycles=False)
    result = align(left, right, config)
    matched_hubs = 0
    for entity, (counterpart, _probability) in result.assignment12.items():
        if entity.name.startswith("ahub"):
            assert counterpart.name == "bhub" + entity.name[4:]
            matched_hubs += 1
    assert matched_hubs >= 1


@given(num_anchors=st.integers(min_value=2, max_value=6), links=link_lists)
@settings(max_examples=20, deadline=None)
def test_serialization_round_trip_preserves_alignment(num_anchors, links, tmp_path_factory):
    left, right = build_structured_pair(num_anchors, links)
    direct = align(left, right, ParisConfig(max_iterations=3))
    left2 = ntriples.loads(ntriples.dumps(left), name="left")
    right2 = ntriples.loads(ntriples.dumps(right), name="right")
    reloaded = align(left2, right2, ParisConfig(max_iterations=3))
    assert {
        (l.name, r.name, round(p, 9)) for l, r, p in direct.instances.items()
    } == {(l.name, r.name, round(p, 9)) for l, r, p in reloaded.instances.items()}


@given(
    pairs=st.lists(
        st.tuples(st.integers(min_value=0, max_value=5),
                  st.integers(min_value=0, max_value=5)),
        min_size=1,
        max_size=10,
        unique=True,
    )
)
@settings(max_examples=40, deadline=None)
def test_reify_dereify_identity(pairs):
    builder = OntologyBuilder("t")
    for subject, obj in pairs:
        builder.fact(f"s{subject}", "won", f"o{obj}")
    onto = builder.build()
    reified = reify(onto, Relation("won"), Resource("Event"),
                    Relation("who"), Relation("what"))
    restored = dereify(reified, Resource("Event"),
                       Relation("who"), Relation("what"), Relation("won"))
    assert set(restored.pairs(Relation("won"))) == set(onto.pairs(Relation("won")))


@given(num_anchors=st.integers(min_value=2, max_value=6), links=link_lists)
@settings(max_examples=20, deadline=None)
def test_error_report_consistent_with_prf(num_anchors, links):
    left, right = build_structured_pair(num_anchors, links)
    result = align(left, right, ParisConfig(max_iterations=3))
    gold = GoldStandard()
    gold.add_instances(
        (f"a{i}", f"b{i}") for i in range(num_anchors)
    )
    prf = evaluate_instances(result.assignment12, gold)
    report = classify_errors(left, right, result, gold)
    assert len(report.false_positives) == prf.false_positives
    assert len(report.false_negatives) == prf.false_negatives
