"""Unit tests for relation-name priors and multi-ontology alignment."""

import pytest

from repro import OntologyBuilder, ParisConfig, align, align_many
from repro.core.multi import MultiAligner
from repro.core.priors import name_prior_matrix, name_similarity, name_tokens
from repro.rdf.terms import Relation, Resource


class TestNameTokens:
    def test_camel_case_split(self):
        assert name_tokens(Relation("wasBornIn")) == {"born"}

    def test_snake_case_split(self):
        assert name_tokens(Relation("birth_place")) == {"birth", "place"}

    def test_namespace_stripped(self):
        assert name_tokens(Relation("dbp:birthPlace")) == {"birth", "place"}

    def test_inverse_marker_ignored(self):
        assert name_tokens(Relation("actedIn", inverted=True)) == {"acted"}

    def test_stop_words_dropped(self):
        assert name_tokens(Relation("hasChild")) == {"child"}


class TestNameSimilarity:
    def test_identical_names(self):
        assert name_similarity(Relation("y:birthPlace"), Relation("dbp:birth_place")) == 1.0

    def test_partial_overlap(self):
        value = name_similarity(Relation("birthPlace"), Relation("birthDate"))
        assert 0.0 < value < 1.0

    def test_disjoint_names(self):
        assert name_similarity(Relation("wasBornIn"), Relation("spouse")) == 0.0

    def test_symmetric(self):
        left, right = Relation("birthPlace"), Relation("placeOfBirth")
        assert name_similarity(left, right) == name_similarity(right, left)


class TestNamePriorMatrix:
    @pytest.fixture()
    def pair(self):
        left = OntologyBuilder("l").value("a", "hasName", "x").fact("a", "bornIn", "c").build()
        right = OntologyBuilder("r").value("b", "name", "x").fact("b", "birthPlace", "d").build()
        return left, right

    def test_floor_is_theta(self, pair):
        left, right = pair
        matrix = name_prior_matrix(left, right, theta=0.1)
        # lexically unrelated pair keeps the floor
        assert matrix.get(Relation("bornIn"), Relation("name")) == 0.1

    def test_similar_names_boosted(self, pair):
        left, right = pair
        matrix = name_prior_matrix(left, right, theta=0.1, theta_max=0.5)
        assert matrix.get(Relation("hasName"), Relation("name")) > 0.1

    def test_cross_direction_not_boosted(self, pair):
        left, right = pair
        matrix = name_prior_matrix(left, right, theta=0.1)
        assert matrix.get(Relation("hasName"), Relation("name").inverse) == 0.1

    def test_validation(self, pair):
        left, right = pair
        with pytest.raises(ValueError):
            name_prior_matrix(left, right, theta=0.4, theta_max=0.2)

    def test_aligner_integration_same_result(self, tiny_pair):
        """With and without the prior, the tiny pair aligns identically
        (the prior accelerates, never excludes)."""
        left, right = tiny_pair
        plain = align(left, right)
        primed = align(left, right, ParisConfig(use_name_prior=True))
        assert {
            (l.name, r.name) for l, (r, _p) in plain.assignment12.items()
        } == {(l.name, r.name) for l, (r, _p) in primed.assignment12.items()}


class TestMultiAligner:
    @pytest.fixture()
    def three_ontologies(self):
        """Three KBs describing the same two people."""
        specs = [
            ("kb1", "a", "nameA", "bornA"),
            ("kb2", "b", "nameB", "bornB"),
            ("kb3", "c", "nameC", "bornC"),
        ]
        ontologies = []
        for name, prefix, name_rel, born_rel in specs:
            builder = OntologyBuilder(name)
            builder.value(f"{prefix}1", name_rel, "Elvis Presley")
            builder.value(f"{prefix}1", born_rel, "1935-01-08")
            builder.value(f"{prefix}2", name_rel, "Johnny Cash")
            builder.value(f"{prefix}2", born_rel, "1932-02-26")
            ontologies.append(builder.build())
        return ontologies

    def test_pairwise_results_present(self, three_ontologies):
        result = align_many(three_ontologies)
        assert set(result.pairwise) == {
            ("kb1", "kb2"), ("kb1", "kb3"), ("kb2", "kb3"),
        }

    def test_clusters_span_all_three(self, three_ontologies):
        result = align_many(three_ontologies)
        spanning = result.clusters_spanning(3)
        assert len(spanning) == 2
        for cluster in spanning:
            assert set(cluster.members) == {"kb1", "kb2", "kb3"}
            assert cluster.confidence > 0.5

    def test_cluster_membership_lookup(self, three_ontologies):
        result = align_many(three_ontologies)
        elvis_cluster = next(
            c for c in result.clusters if Resource("a1") in c
        )
        assert elvis_cluster.members["kb2"] == Resource("b1")
        assert elvis_cluster.members["kb3"] == Resource("c1")

    def test_one_instance_per_ontology_per_cluster(self, three_ontologies):
        result = align_many(three_ontologies)
        for cluster in result.clusters:
            assert len(cluster.members) == len(set(cluster.members))

    def test_requires_two_ontologies(self, three_ontologies):
        with pytest.raises(ValueError):
            MultiAligner(three_ontologies[:1])

    def test_requires_distinct_names(self, three_ontologies):
        with pytest.raises(ValueError):
            MultiAligner([three_ontologies[0], three_ontologies[0]])

    def test_conflicting_evidence_keeps_strongest(self):
        """Two kb1 instances cannot land in one cluster even when a
        third ontology links them both."""
        kb1 = (
            OntologyBuilder("kb1")
            .value("a1", "n1", "Kim")
            .value("a1", "p1", "111")
            .value("a2", "n1", "Kim")
            .value("a2", "p1", "222")
            .build()
        )
        kb2 = (
            OntologyBuilder("kb2")
            .value("b1", "n2", "Kim")
            .value("b1", "p2", "111")
            .build()
        )
        kb3 = (
            OntologyBuilder("kb3")
            .value("c1", "n3", "Kim")
            .value("c1", "p3", "222")
            .build()
        )
        result = align_many([kb1, kb2, kb3])
        for cluster in result.clusters:
            members = list(cluster.members.values())
            assert not (Resource("a1") in members and Resource("a2") in members)
