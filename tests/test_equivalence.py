"""Hand-verified tests for the instance-equivalence pass (Eq. 13 / 14)."""

import pytest

from repro.core.equivalence import (
    instance_equivalence_pass,
    negative_evidence_factor,
    score_instance,
)
from repro.core.functionality import FunctionalityOracle
from repro.core.literal_index import LiteralIndex
from repro.core.matrix import SubsumptionMatrix
from repro.core.store import EquivalenceStore
from repro.core.view import EquivalenceView
from repro.literals import IdentitySimilarity
from repro.rdf.builder import OntologyBuilder
from repro.rdf.terms import Literal, Relation, Resource


def make_view(onto1, onto2, store=None):
    similarity = IdentitySimilarity()
    return EquivalenceView(
        store or EquivalenceStore(),
        LiteralIndex(onto2, similarity),
        LiteralIndex(onto1, similarity),
    )


@pytest.fixture()
def single_fact_pair():
    onto1 = OntologyBuilder("o1").value("e1", "name", "Elvis").build()
    onto2 = OntologyBuilder("o2").value("f1", "label", "Elvis").build()
    return onto1, onto2


class TestScoreInstanceEq13:
    def test_bootstrap_score_hand_computed(self, single_fact_pair):
        """With θ=0.1 priors and one shared unique literal:
        Pr = 1 - (1 - 0.1·1·1)² = 0.19."""
        onto1, onto2 = single_fact_pair
        scores = score_instance(
            Resource("e1"),
            onto1,
            onto2,
            make_view(onto1, onto2),
            FunctionalityOracle(onto1),
            FunctionalityOracle(onto2),
            SubsumptionMatrix.bootstrap(0.1),
            SubsumptionMatrix.bootstrap(0.1),
        )
        assert scores == {Resource("f1"): pytest.approx(1 - 0.81)}

    def test_known_relation_alignment_gives_certainty(self, single_fact_pair):
        """With Pr(r'⊆r) = 1 and a unique shared value, Pr(x≡x') → 1."""
        onto1, onto2 = single_fact_pair
        rel12 = SubsumptionMatrix()
        rel21 = SubsumptionMatrix()
        rel12.set(Relation("name"), Relation("label"), 1.0)
        rel21.set(Relation("label"), Relation("name"), 1.0)
        scores = score_instance(
            Resource("e1"),
            onto1,
            onto2,
            make_view(onto1, onto2),
            FunctionalityOracle(onto1),
            FunctionalityOracle(onto2),
            rel12,
            rel21,
        )
        assert scores[Resource("f1")] == pytest.approx(1.0)

    def test_low_inverse_functionality_weakens_evidence(self):
        """A shared city (low fun⁻) gives much weaker evidence than a
        shared unique name (fun⁻ = 1) — the Appendix C argument."""
        builder1 = OntologyBuilder("o1")
        builder2 = OntologyBuilder("o2")
        for i in range(10):
            builder1.value(f"a{i}", "livesIn", "London")
            builder2.value(f"b{i}", "cityOf", "London")
        builder1.value("a0", "name", "Alice")
        builder2.value("b0", "label", "Alice")
        onto1, onto2 = builder1.build(), builder2.build()
        scores = score_instance(
            Resource("a0"),
            onto1,
            onto2,
            make_view(onto1, onto2),
            FunctionalityOracle(onto1),
            FunctionalityOracle(onto2),
            SubsumptionMatrix.bootstrap(0.1),
            SubsumptionMatrix.bootstrap(0.1),
        )
        # b0 has the name AND the city; b1 only the city.
        assert scores[Resource("b0")] > scores[Resource("b1")]
        # city-only evidence: fun^-1 = 1/10 each side
        assert scores[Resource("b1")] == pytest.approx(
            1 - (1 - 0.1 * 0.1) ** 2, abs=1e-9
        )

    def test_no_shared_evidence_no_candidates(self):
        onto1 = OntologyBuilder("o1").value("e1", "name", "Elvis").build()
        onto2 = OntologyBuilder("o2").value("f1", "label", "Cash").build()
        scores = score_instance(
            Resource("e1"),
            onto1,
            onto2,
            make_view(onto1, onto2),
            FunctionalityOracle(onto1),
            FunctionalityOracle(onto2),
            SubsumptionMatrix.bootstrap(0.1),
            SubsumptionMatrix.bootstrap(0.1),
        )
        assert scores == {}

    def test_recursive_evidence_through_resources(self):
        """Matched neighbours propagate equivalence (the recursion of
        Eq. 13): if Tupelo ≡ T-Town is known, Elvis gains evidence."""
        onto1 = OntologyBuilder("o1").fact("elvis", "bornIn", "tupelo").build()
        onto2 = OntologyBuilder("o2").fact("elvis2", "birthPlace", "ttown").build()
        store = EquivalenceStore()
        store.set(Resource("tupelo"), Resource("ttown"), 1.0)
        scores = score_instance(
            Resource("elvis"),
            onto1,
            onto2,
            make_view(onto1, onto2, store),
            FunctionalityOracle(onto1),
            FunctionalityOracle(onto2),
            SubsumptionMatrix.bootstrap(0.1),
            SubsumptionMatrix.bootstrap(0.1),
        )
        assert Resource("elvis2") in scores

    def test_symmetry_of_scores(self, single_fact_pair):
        """Eq. 13 is symmetric: scoring from either side gives the same
        probability for the pair."""
        onto1, onto2 = single_fact_pair
        args = (
            make_view(onto1, onto2),
            FunctionalityOracle(onto1),
            FunctionalityOracle(onto2),
            SubsumptionMatrix.bootstrap(0.1),
            SubsumptionMatrix.bootstrap(0.1),
        )
        forward = score_instance(Resource("e1"), onto1, onto2, *args)
        similarity = IdentitySimilarity()
        view_back = EquivalenceView(
            EquivalenceStore(),
            LiteralIndex(onto1, similarity),
            LiteralIndex(onto2, similarity),
        )
        backward = score_instance(
            Resource("f1"),
            onto2,
            onto1,
            view_back,
            FunctionalityOracle(onto2),
            FunctionalityOracle(onto1),
            SubsumptionMatrix.bootstrap(0.1),
            SubsumptionMatrix.bootstrap(0.1),
        )
        assert forward[Resource("f1")] == pytest.approx(backward[Resource("e1")])


class TestNegativeEvidenceEq14:
    @pytest.fixture()
    def disagreeing_pair(self):
        """x and x' share a name but disagree on a functional value."""
        onto1 = (
            OntologyBuilder("o1")
            .value("x", "name", "Kim")
            .value("x", "born", "1950-01-01")
            .build()
        )
        onto2 = (
            OntologyBuilder("o2")
            .value("x2", "label", "Kim")
            .value("x2", "birthDate", "1970-05-05")
            .build()
        )
        rel12 = SubsumptionMatrix()
        rel21 = SubsumptionMatrix()
        rel12.set(Relation("born"), Relation("birthDate"), 1.0)
        rel21.set(Relation("birthDate"), Relation("born"), 1.0)
        return onto1, onto2, rel12, rel21

    def test_functional_disagreement_kills_match(self, disagreeing_pair):
        onto1, onto2, rel12, rel21 = disagreeing_pair
        penalty = negative_evidence_factor(
            Resource("x"),
            Resource("x2"),
            onto1,
            onto2,
            make_view(onto1, onto2),
            FunctionalityOracle(onto1),
            FunctionalityOracle(onto2),
            rel12,
            rel21,
        )
        # fun(born) = 1, Pr aligned = 1, no matching birth date:
        # penalty factor (1 - 1·1·1) = 0.
        assert penalty == 0.0

    def test_agreement_gives_no_penalty(self):
        onto1 = OntologyBuilder("o1").value("x", "born", "1950-01-01").build()
        onto2 = OntologyBuilder("o2").value("x2", "birthDate", "1950-01-01").build()
        rel12 = SubsumptionMatrix()
        rel21 = SubsumptionMatrix()
        rel12.set(Relation("born"), Relation("birthDate"), 1.0)
        rel21.set(Relation("birthDate"), Relation("born"), 1.0)
        penalty = negative_evidence_factor(
            Resource("x"),
            Resource("x2"),
            onto1,
            onto2,
            make_view(onto1, onto2),
            FunctionalityOracle(onto1),
            FunctionalityOracle(onto2),
            rel12,
            rel21,
        )
        assert penalty == pytest.approx(1.0)

    def test_missing_relation_penalizes(self):
        """x has a born date, x' has no birthDate statement at all: the
        paper sets the inner product to 1, penalizing the match."""
        onto1 = (
            OntologyBuilder("o1")
            .value("x", "name", "Kim")
            .value("x", "born", "1950-01-01")
            .build()
        )
        onto2 = (
            OntologyBuilder("o2")
            .value("x2", "label", "Kim")
            .value("someone-else", "birthDate", "1960-01-01")
            .build()
        )
        rel12 = SubsumptionMatrix()
        rel21 = SubsumptionMatrix()
        rel12.set(Relation("born"), Relation("birthDate"), 1.0)
        rel21.set(Relation("birthDate"), Relation("born"), 1.0)
        penalty = negative_evidence_factor(
            Resource("x"),
            Resource("x2"),
            onto1,
            onto2,
            make_view(onto1, onto2),
            FunctionalityOracle(onto1),
            FunctionalityOracle(onto2),
            rel12,
            rel21,
        )
        assert penalty < 1.0


class TestInstancePass:
    def test_pass_fills_store_both_directions(self, single_fact_pair):
        onto1, onto2 = single_fact_pair
        store = instance_equivalence_pass(
            onto1,
            onto2,
            make_view(onto1, onto2),
            FunctionalityOracle(onto1),
            FunctionalityOracle(onto2),
            SubsumptionMatrix.bootstrap(0.1),
            SubsumptionMatrix.bootstrap(0.1),
            truncation_threshold=0.1,
        )
        assert store.get(Resource("e1"), Resource("f1")) > 0
        assert dict(store.equals_of_right(Resource("f1")))

    def test_truncation_drops_weak_scores(self, single_fact_pair):
        onto1, onto2 = single_fact_pair
        store = instance_equivalence_pass(
            onto1,
            onto2,
            make_view(onto1, onto2),
            FunctionalityOracle(onto1),
            FunctionalityOracle(onto2),
            SubsumptionMatrix.bootstrap(0.1),
            SubsumptionMatrix.bootstrap(0.1),
            truncation_threshold=0.5,  # above the 0.19 bootstrap score
        )
        assert len(store) == 0
