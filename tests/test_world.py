"""Unit tests for the hidden-world model and projections."""

import random

import pytest

from repro.datasets.noise import NoiseModel
from repro.datasets.world import (
    AttributeSpec,
    LinkSpec,
    Projection,
    World,
    derive_pair,
)
from repro.rdf.terms import Literal, Relation, Resource


@pytest.fixture()
def world():
    world = World()
    world.add("p1", "person", tags={"singer"}, name="Elvis", born="1935-01-08")
    world.add("p2", "person", tags={"actor"}, name="Cash")
    world.add("c1", "city", name="Tupelo")
    world.add("b1", "work", tags={"book"}, name="Memoirs")
    world.link("p1", "bornIn", "c1")
    world.link("p1", "created", "b1")
    return world


def simple_projection(name, prefix, include=lambda e: True, link_specs=None):
    return Projection(
        name=name,
        rename=lambda uid: f"{prefix}{uid}",
        attribute_specs={"name": AttributeSpec(f"{prefix}name")},
        link_specs=link_specs or {"bornIn": [LinkSpec(f"{prefix}bornIn")]},
        classes_of=lambda entity: [f"{prefix}{entity.kind}"],
        subclass_edges=[],
        class_tags={},
        include=include,
        noise=NoiseModel(random.Random(0)),
    )


class TestWorld:
    def test_add_and_get(self, world):
        assert world.get("p1").attributes["name"] == "Elvis"
        assert len(world) == 4

    def test_duplicate_uid_rejected(self, world):
        with pytest.raises(ValueError):
            world.add("p1", "person")

    def test_link_to_unknown_rejected(self, world):
        with pytest.raises(KeyError):
            world.link("p1", "knows", "nobody")

    def test_kind_index(self, world):
        assert [e.uid for e in world.by_kind("person")] == ["p1", "p2"]
        assert world.by_kind("unknown") == []

    def test_tags_include_kind(self, world):
        assert "person" in world.get("p1").tags
        assert "singer" in world.get("p1").tags

    def test_extent_of_tag(self, world):
        assert world.extent_of_tag("person") == frozenset({"p1", "p2"})
        assert world.extent_of_tag("singer") == frozenset({"p1"})


class TestProjection:
    def test_materialize_attributes(self, world):
        projection = simple_projection("o1", "L_")
        projection._world = world
        onto, mapping = projection.materialize(world)
        assert onto.has(Resource("L_p1"), Relation("L_name"), Literal("Elvis"))
        assert mapping["p1"] == "L_p1"

    def test_materialize_links(self, world):
        projection = simple_projection("o1", "L_")
        projection._world = world
        onto, _ = projection.materialize(world)
        assert onto.has(Resource("L_p1"), Relation("L_bornIn"), Resource("L_c1"))

    def test_inverted_link(self, world):
        projection = simple_projection(
            "o1", "L_",
            link_specs={"created": [LinkSpec("L_author", inverted=True)]},
        )
        projection._world = world
        onto, _ = projection.materialize(world)
        assert onto.has(Resource("L_b1"), Relation("L_author"), Resource("L_p1"))

    def test_target_tag_filter(self, world):
        projection = simple_projection(
            "o1", "L_",
            link_specs={
                "created": [
                    LinkSpec("L_wroteBook", only_target_tag="book"),
                    LinkSpec("L_composed", only_target_tag="song"),
                ]
            },
        )
        projection._world = world
        onto, _ = projection.materialize(world)
        assert onto.has(Resource("L_p1"), Relation("L_wroteBook"), Resource("L_b1"))
        assert onto.num_statements(Relation("L_composed")) == 0

    def test_selection_excludes_entities_and_their_links(self, world):
        projection = simple_projection(
            "o1", "L_", include=lambda entity: entity.uid != "c1"
        )
        projection._world = world
        onto, mapping = projection.materialize(world)
        assert "c1" not in mapping
        assert onto.num_statements(Relation("L_bornIn")) == 0

    def test_classes_assigned(self, world):
        projection = simple_projection("o1", "L_")
        projection._world = world
        onto, _ = projection.materialize(world)
        assert Resource("L_p1") in onto.instances_of(Resource("L_person"))

    def test_class_extents_independent_of_selection(self, world):
        projection = simple_projection("o1", "L_", include=lambda e: e.uid == "p1")
        extents = projection.class_extents(world)
        # extent covers all world entities regardless of inclusion
        assert extents["L_person"] == frozenset({"p1", "p2"})

    def test_class_extents_propagate_to_superclasses(self, world):
        projection = simple_projection("o1", "L_")
        projection.subclass_edges = [("L_person", "L_agent")]
        extents = projection.class_extents(world)
        assert extents["L_agent"] >= extents["L_person"]


class TestDerivePair:
    def test_gold_is_shared_instances(self, world):
        pair = derive_pair(
            "demo",
            world,
            simple_projection("o1", "L_"),
            simple_projection("o2", "R_", include=lambda e: e.uid != "p2"),
            relation_gold=[("L_name", "R_name")],
        )
        gold_lefts = {left for left, _right in pair.gold.instance_pairs}
        assert "L_p1" in gold_lefts
        assert "L_p2" not in gold_lefts  # excluded from the right side

    def test_relation_gold_closed_under_inversion(self, world):
        pair = derive_pair(
            "demo",
            world,
            simple_projection("o1", "L_"),
            simple_projection("o2", "R_"),
            relation_gold=[("L_name", "R_name")],
        )
        assert pair.gold.has_relation_pair(
            Relation("L_name").inverse, Relation("R_name").inverse
        )

    def test_class_gold_from_extents(self, world):
        pair = derive_pair(
            "demo",
            world,
            simple_projection("o1", "L_"),
            simple_projection("o2", "R_"),
            relation_gold=[],
        )
        assert pair.gold.has_class_inclusion(
            Resource("L_person"), Resource("R_person")
        )
        assert not pair.gold.has_class_inclusion(
            Resource("L_person"), Resource("R_city")
        )

    def test_vocabularies_disjoint(self, world):
        pair = derive_pair(
            "demo",
            world,
            simple_projection("o1", "L_"),
            simple_projection("o2", "R_"),
            relation_gold=[],
        )
        left_relations = {r.name for r in pair.ontology1.relations()}
        right_relations = {r.name for r in pair.ontology2.relations()}
        assert not left_relations & right_relations
        left_instances = {i.name for i in pair.ontology1.instances}
        right_instances = {i.name for i in pair.ontology2.instances}
        assert not left_instances & right_instances
