"""Unit and property tests for the production read path's data layer.

Covers :mod:`repro.service.query` (secondary index, keyset cursors,
ETags), the change-log exposure in :mod:`repro.core.result`
(``merge_assignment_deltas`` / ``net_assignment_changes``), and
:mod:`repro.service.subs` (event collapsing, long-poll dedup, webhook
delivery with persisted cursors).

The hypothesis property at the bottom is the ISSUE's cursor-stability
contract: a full page walk interleaved with random delta batches
yields exactly the union of a consistent snapshot plus
flagged-resumable pages — entities untouched by every delta appear
exactly once (no duplicates, no silent skips), every served row was
true at the moment it was served, and every page served after a
concurrent delta carries the ``changed_since_cursor`` flag.
"""

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.result import (
    IterationSnapshot,
    assignment_delta,
    merge_assignment_deltas,
)
from repro.rdf.terms import Resource
from repro.service.query import (
    ChangeEvent,
    CursorError,
    QueryIndex,
    etag_matches,
    make_cursor,
    parse_cursor,
    read_etag,
)
from repro.service.subs import SubscriptionManager, collapse_events


def _assignment(pairs):
    """{left name: (right name, prob)} → the engine's Resource-keyed shape."""
    return {
        Resource(left): (Resource(right), probability)
        for left, (right, probability) in pairs.items()
    }


def _rows(index, threshold=0.0):
    rows, cursor = [], None
    while True:
        page, cursor = index.page(threshold=threshold, after=cursor, limit=3)
        rows.extend(page)
        if cursor is None:
            return rows


class TestQueryIndex:
    def test_rebuild_orders_like_the_alignment_endpoint(self):
        index = QueryIndex()
        index.rebuild(
            _assignment({"b": ("y", 0.5), "a": ("x", 0.9), "c": ("z", 0.5)}),
            version=3,
            wal_offset=7,
        )
        assert _rows(index) == [("a", "x", 0.9), ("b", "y", 0.5), ("c", "z", 0.5)]
        assert index.read_tag() == (3, 7)
        assert len(index) == 3

    def test_threshold_is_a_prefix_including_exact_boundary(self):
        index = QueryIndex()
        index.rebuild(
            _assignment({"a": ("x", 0.9), "b": ("y", 0.5), "c": ("z", 0.1)}),
            version=1,
            wal_offset=0,
        )
        assert [row[0] for row in index.top(10, threshold=0.5)] == ["a", "b"]
        assert [row[0] for row in index.top(10, threshold=0.500001)] == ["a"]
        assert len(index.snapshot_keys(threshold=0.1)) == 3
        assert index.top(2) == [("a", "x", 0.9), ("b", "y", 0.5)]

    def test_apply_changes_insert_update_remove(self):
        index = QueryIndex()
        index.rebuild(
            _assignment({"a": ("x", 0.9), "b": ("y", 0.5)}), version=1, wal_offset=1
        )
        mutations = index.apply_changes(
            {
                Resource("b"): None,  # dropped
                Resource("a"): (Resource("x"), 0.2),  # demoted
                Resource("d"): (Resource("w"), 0.7),  # fresh
            },
            version=2,
            wal_offset=5,
        )
        assert mutations == 4  # remove b, remove+insert a, insert d
        assert _rows(index) == [("d", "w", 0.7), ("a", "x", 0.2)]
        assert index.read_tag() == (2, 5)

    def test_page_after_key_resumes_without_overlap(self):
        index = QueryIndex()
        index.rebuild(
            _assignment({f"e{i}": ("x", 1.0 - i / 10) for i in range(10)}),
            version=1,
            wal_offset=0,
        )
        first, cursor = index.page(limit=4)
        rest, end = index.page(after=cursor, limit=100)
        assert [r[0] for r in first + rest] == [f"e{i}" for i in range(10)]
        assert end is None


class TestCursors:
    def test_roundtrip(self):
        key = (-0.75, "left-é", "right/слово")
        text = make_cursor(key, 0.5, (3, 9))
        assert parse_cursor(text, 0.5) == (key, (3, 9))

    def test_threshold_mismatch_rejected(self):
        text = make_cursor((-0.75, "a", "b"), 0.5, (1, 1))
        with pytest.raises(CursorError, match="threshold"):
            parse_cursor(text, 0.6)

    @pytest.mark.parametrize(
        "bad", ["", "garbage!!", "aGVsbG8", "eyJ2IjogMn0", "eyJ2IjogMX0"]
    )
    def test_garbage_rejected(self, bad):
        with pytest.raises(CursorError):
            parse_cursor(bad, 0.0)


class TestEtags:
    def test_wal_offset_wins_over_version(self):
        assert read_etag(4, 17) == 'W/"w17"'
        assert read_etag(4, 0) == 'W/"v4"'

    def test_weak_compare(self):
        etag = read_etag(1, 9)
        assert etag_matches(etag, etag)
        assert etag_matches('"w9"', etag)  # strong form still validates
        assert etag_matches('W/"w8", W/"w9"', etag)
        assert etag_matches("*", etag)
        assert not etag_matches('W/"w8"', etag)
        assert not etag_matches(None, etag)


class TestChangeLogExposure:
    def test_merge_drops_reverted_entities(self):
        a, b = Resource("a"), Resource("b")
        x, y = Resource("x"), Resource("y")
        base = {a: (x, 0.5)}
        deltas = [
            {a: (x, 0.9), b: (y, 0.4)},  # pass 1
            {a: (x, 0.5)},  # pass 2 reverts a to the base value
        ]
        assert merge_assignment_deltas(deltas, base) == {b: (y, 0.4)}

    def test_net_changes_match_full_diff_over_a_snapshot_chain(self):
        a, b, c = Resource("a"), Resource("b"), Resource("c")
        x, y = Resource("x"), Resource("y")
        base = {a: (x, 0.5), c: (y, 0.3)}
        passes = [
            {a: (x, 0.8), b: (y, 0.6)},
            {a: (x, 0.8), b: (y, 0.7)},  # c dropped in pass 2
        ]
        previous = None
        previous_assignment = dict(base)
        chain = []
        for index, assignment in enumerate(passes, start=1):
            snapshot = IterationSnapshot.capture(
                index=index,
                duration_seconds=0.0,
                change_fraction=None,
                num_equivalences=len(assignment),
                assignment12=assignment,
                assignment21=assignment,
                relations12=None,
                relations21=None,
                previous=previous,
                previous12=previous_assignment,
                previous21=previous_assignment,
            )
            chain.append(snapshot)
            previous = snapshot
            previous_assignment = dict(assignment)
        merged = merge_assignment_deltas(
            (snap.assignment12_delta for snap in chain), chain[0].base12
        )
        assert merged == assignment_delta(base, passes[-1])
        assert merged == {a: (x, 0.8), b: (y, 0.7), c: None}


def _event(entity, prob, prev_prob, version, counterpart="x", prev="x", side="left"):
    return ChangeEvent(
        side=side,
        entity=entity,
        counterpart=counterpart,
        probability=prob,
        previous_counterpart=prev,
        previous_probability=prev_prob,
        wal_offset=version,
        version=version,
    )


class TestCollapse:
    def test_run_nets_out_first_previous_last_current(self):
        changes = collapse_events(
            [
                _event("e", 0.9, 0.5, 1),
                _event("e", 0.4, 0.9, 2),
                _event("e", 0.55, 0.4, 3),
            ]
        )
        (change,) = changes
        assert change["previous_probability"] == 0.5
        assert change["probability"] == 0.55
        assert change["magnitude"] == pytest.approx(0.05)
        assert change["events_collapsed"] == 3
        assert not change["counterpart_changed"]

    def test_sides_collapse_independently(self):
        changes = collapse_events(
            [_event("e", 0.9, 0.5, 1, side="left"), _event("e", 0.2, 0.1, 1, side="right")]
        )
        assert [change["side"] for change in changes] == ["left", "right"]


class TestSubscriptionManager:
    def test_longpoll_collapses_to_exactly_one_notification(self):
        subs = SubscriptionManager()
        try:
            subs.publish([_event("e", 0.9, 0.5, 1)], version=1, wal_offset=1)
            subs.publish([_event("e", 0.95, 0.9, 2)], version=2, wal_offset=2)
            note = subs.wait("e", epsilon=0.1, after=0, timeout=0.1)
            assert note is not None and len(note["changes"]) == 1
            assert note["changes"][0]["magnitude"] == pytest.approx(0.45)
            assert note["version"] == 2
            # Resuming past the delivered version: nothing new → dedup.
            assert subs.wait("e", epsilon=0.1, after=note["version"], timeout=0.1) is None
        finally:
            subs.close()

    def test_epsilon_filters_but_counterpart_change_always_fires(self):
        subs = SubscriptionManager()
        try:
            subs.publish([_event("e", 0.52, 0.5, 1)], version=1, wal_offset=1)
            assert subs.wait("e", epsilon=0.1, after=0, timeout=0.1) is None
            subs.publish(
                [_event("e", 0.52, 0.52, 2, counterpart="y", prev="x")],
                version=2,
                wal_offset=2,
            )
            note = subs.wait("e", epsilon=0.1, after=0, timeout=0.1)
            assert note is not None
            assert note["changes"][0]["counterpart_changed"]
        finally:
            subs.close()

    def test_wait_wakes_on_publish(self):
        subs = SubscriptionManager()
        try:
            result = {}

            def park():
                result["note"] = subs.wait("e", epsilon=0.0, timeout=10.0)

            thread = threading.Thread(target=park)
            thread.start()
            time.sleep(0.2)
            subs.publish([_event("e", 0.9, 0.1, 1)], version=1, wal_offset=1)
            thread.join(timeout=10.0)
            assert result["note"] is not None
        finally:
            subs.close()

    def test_webhook_delivers_once_and_cursor_survives_restart(self, tmp_path):
        received = []

        class Hook(BaseHTTPRequestHandler):
            def do_POST(self):
                length = int(self.headers["Content-Length"])
                received.append(json.loads(self.rfile.read(length)))
                self.send_response(204)
                self.end_headers()

            def log_message(self, *args):
                pass

        sink = HTTPServer(("127.0.0.1", 0), Hook)
        threading.Thread(target=sink.serve_forever, daemon=True).start()
        url = f"http://127.0.0.1:{sink.server_address[1]}/hook"

        subs = SubscriptionManager(state_dir=tmp_path)
        record = subs.subscribe(url, "e", epsilon=0.1)
        subs.publish(
            [_event("e", 0.9, 0.5, 1), _event("e", 0.95, 0.9, 1)],
            version=1,
            wal_offset=1,
        )
        deadline = time.monotonic() + 10.0
        while not received and time.monotonic() < deadline:
            time.sleep(0.05)
        assert len(received) == 1  # two events, one collapsed delivery
        assert received[0]["changes"][0]["probability"] == 0.95
        time.sleep(0.3)
        assert len(received) == 1  # and never a duplicate
        subs.close()

        # Restart: WAL replay re-publishes version 1; the persisted
        # delivered_version cursor filters it — lossless, duplicate-free.
        reborn = SubscriptionManager(state_dir=tmp_path)
        assert reborn.subscriptions()[0]["id"] == record["id"]
        reborn.publish([_event("e", 0.95, 0.5, 1)], version=1, wal_offset=1)
        time.sleep(0.5)
        assert len(received) == 1
        # A genuinely new version past the cursor still delivers.
        reborn.publish([_event("e", 0.2, 0.95, 2)], version=2, wal_offset=2)
        deadline = time.monotonic() + 10.0
        while len(received) < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert len(received) == 2
        reborn.close()
        sink.shutdown()


# -- the cursor-stability property -----------------------------------------

_names = st.integers(min_value=0, max_value=29).map(lambda i: f"e{i}")
_probs = st.integers(min_value=1, max_value=100).map(lambda i: i / 100)
_match = st.tuples(st.sampled_from(["x", "y", "z"]), _probs)
_base = st.dictionaries(_names, _match, min_size=1, max_size=25)
_batches = st.lists(
    st.dictionaries(_names, st.one_of(st.none(), _match), min_size=1, max_size=6),
    max_size=5,
)


@settings(max_examples=60, deadline=None)
@given(base=_base, batches=_batches, page_size=st.integers(1, 7), data=st.data())
def test_page_walk_under_concurrent_deltas(base, batches, page_size, data):
    """The tentpole contract: keyset pages under concurrent deltas are
    the union of a consistent snapshot plus flagged-resumable pages —
    untouched entities appear exactly once, every served row was true
    when served, and concurrent deltas are never silent."""
    index = QueryIndex()
    index.rebuild(_assignment(base), version=1, wal_offset=1)
    shadow = dict(base)  # ground truth at the index's current tag
    pending = list(batches)
    served = []
    flags = []
    cursor_key, cursor_tag = None, index.read_tag()
    version = 1
    applied_mid_walk = 0
    while True:
        # A delta batch may land between any two pages.
        if pending and data.draw(st.booleans(), label="interleave delta"):
            batch = pending.pop(0)
            version += 1
            if cursor_key is not None:
                applied_mid_walk += 1
            index.apply_changes(
                {
                    Resource(name): (
                        None
                        if match is None
                        else (Resource(match[0]), match[1])
                    )
                    for name, match in batch.items()
                },
                version=version,
                wal_offset=version,
            )
            for name, match in batch.items():
                if match is None:
                    shadow.pop(name, None)
                else:
                    shadow[name] = match
        serve_tag = index.read_tag()
        flags.append(serve_tag != cursor_tag and cursor_key is not None)
        rows, next_key = index.page(after=cursor_key, limit=page_size)
        for left, right, probability in rows:
            # Every served row was true at the moment it was served.
            assert shadow.get(left) == (right, probability)
        served.extend(rows)
        if next_key is None:
            break
        cursor_key, cursor_tag = next_key, serve_tag

    touched = set().union(*batches) if batches else set()
    for name in set(base) - touched:
        # No duplicates, no silent skips for entities no delta moved.
        assert sum(1 for row in served if row[0] == name) == 1, name
    # Concurrent deltas are detected: any batch applied after a cursor
    # was minted must raise the changed_since_cursor flag on a later
    # page (tags are monotone, so any applied batch changes the tag).
    applied = len(batches) - len(pending)
    if applied_mid_walk:
        assert any(flags), "a concurrent delta went undetected"
    if not applied:
        # No interleaved deltas: the walk IS the consistent snapshot.
        expected = sorted(
            ((left, match[0], match[1]) for left, match in base.items()),
            key=lambda row: (-row[2], row[0], row[1]),
        )
        assert served == expected
        assert not any(flags)
