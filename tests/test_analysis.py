"""Unit tests for the analysis package (explanations, error forensics)."""

import pytest

from repro import OntologyBuilder, align
from repro.analysis import (
    FalseNegativeKind,
    FalsePositiveKind,
    classify_errors,
    explain_match,
    render_explanation,
)
from repro.evaluation.gold import GoldStandard
from repro.rdf.terms import Resource


class TestExplainMatch:
    def test_explanation_recombines_to_reported(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        explanation = explain_match(left, right, result, Resource("p1"), Resource("x9"))
        assert explanation.items
        assert explanation.recombined_probability == pytest.approx(
            explanation.reported_probability, abs=0.05
        )

    def test_items_carry_evidence_details(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        explanation = explain_match(left, right, result, Resource("p1"), Resource("x9"))
        relations = {str(item.relation1) for item in explanation.items}
        assert "name" in relations
        assert "bornIn" in relations
        for item in explanation.items:
            assert 0.0 < item.prob_y <= 1.0
            assert 0.0 <= item.factor <= 1.0
            assert item.strength == pytest.approx(1.0 - item.factor)

    def test_non_match_has_no_items(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        explanation = explain_match(left, right, result, Resource("p1"), Resource("x7"))
        assert explanation.items == []
        assert explanation.recombined_probability == 0.0

    def test_top_items_sorted(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        explanation = explain_match(left, right, result, Resource("p1"), Resource("x9"))
        strengths = [item.strength for item in explanation.top_items(10)]
        assert strengths == sorted(strengths, reverse=True)

    def test_render(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        explanation = explain_match(left, right, result, Resource("p1"), Resource("x9"))
        text = render_explanation(explanation)
        assert "p1 ≡ x9" in text
        assert "reported probability" in text
        assert "Elvis Presley" in text


class TestClassifyErrors:
    @pytest.fixture()
    def erroneous_pair(self):
        """A pair engineered to produce one of each error kind."""
        left = (
            OntologyBuilder("l")
            # a1: clean match
            .value("a1", "name", "Alice Abel")
            .value("a1", "phone", "111")
            # a2: homonym trap — shares name with wrong right entity
            .value("a2", "name", "Kim Novak")
            .value("a2", "phone", "222")
            # a3: label noise — no shared literal at all
            .value("a3", "name", "Sugata Sanshiro")
            .build()
        )
        right = (
            OntologyBuilder("r")
            .value("b1", "label", "Alice Abel")
            .value("b1", "tel", "111")
            # b2 is a2's gold partner but its values differ
            .value("b2", "label", "Kim  Novak corrected")
            .value("b2", "tel", "999")
            # b2x shares a2's name: the homonym
            .value("b2x", "label", "Kim Novak")
            # b3 is a3's gold partner with swapped label
            .value("b3", "label", "Sanshiro Sugata")
            .build()
        )
        gold = GoldStandard()
        gold.add_instances([("a1", "b1"), ("a2", "b2"), ("a3", "b3")])
        return left, right, gold

    def test_error_kinds_detected(self, erroneous_pair):
        left, right, gold = erroneous_pair
        result = align(left, right)
        report = classify_errors(left, right, result, gold)
        fp_kinds = {case.kind for case in report.false_positives}
        fn_kinds = {case.kind for case in report.false_negatives}
        assert FalsePositiveKind.HOMONYM in fp_kinds
        assert FalseNegativeKind.NO_SHARED_LITERAL in fn_kinds
        assert FalseNegativeKind.LOST_TO_RIVAL in fn_kinds

    def test_correct_matches_not_reported(self, erroneous_pair):
        left, right, gold = erroneous_pair
        result = align(left, right)
        report = classify_errors(left, right, result, gold)
        mentioned = {case.left.name for case in report.false_positives}
        mentioned |= {case.left.name for case in report.false_negatives}
        assert "a1" not in mentioned

    def test_summary_and_counts(self, erroneous_pair):
        left, right, gold = erroneous_pair
        result = align(left, right)
        report = classify_errors(left, right, result, gold)
        counts = report.counts()
        assert sum(counts.values()) == len(report.false_positives) + len(
            report.false_negatives
        )
        assert "false positives" in report.summary()

    def test_near_duplicate_detection(self):
        """A wrong match sharing the gold counterpart's neighbourhood
        is classified as a near duplicate (the Yukon Patrol case)."""
        left = (
            OntologyBuilder("l")
            .value("m1", "title", "King Royal")
            .fact("c1", "actedIn", "m1")
            .fact("c2", "actedIn", "m1")
            .value("c1", "name", "Allan Lane")
            .value("c2", "name", "Robert Strange")
            .build()
        )
        right = (
            OntologyBuilder("r")
            # the true counterpart, label dropped
            .fact("d1", "cast", "w1")
            .fact("d2", "cast", "w1")
            # the near-duplicate variant with the same cast AND a label
            .value("w2", "label", "King Royal")
            .fact("d1", "cast", "w2")
            .fact("d2", "cast", "w2")
            .value("d1", "label", "Allan Lane")
            .value("d2", "label", "Robert Strange")
            .build()
        )
        gold = GoldStandard()
        gold.add_instances([("m1", "w1")])
        result = align(left, right)
        produced = result.assignment12.get(Resource("m1"))
        assert produced is not None and produced[0] == Resource("w2")
        report = classify_errors(left, right, result, gold)
        assert any(
            case.kind == FalsePositiveKind.NEAR_DUPLICATE
            for case in report.false_positives
        )

    def test_perfect_alignment_empty_report(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        gold = GoldStandard()
        gold.add_instances([("p1", "x9"), ("p2", "x7")])
        report = classify_errors(left, right, result, gold)
        assert not report.false_positives
        assert not report.false_negatives
