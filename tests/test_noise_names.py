"""Unit tests for the noise models and name pools."""

import random

import pytest

from repro.datasets import names
from repro.datasets.noise import (
    NoiseModel,
    corrupt_digit,
    recase_and_punctuate,
    reformat_date,
    reformat_phone,
    swap_word_order,
    typo,
)
from repro.literals import normalize_string


class TestNoisePrimitives:
    def test_reformat_phone_preserves_digits(self):
        rng = random.Random(0)
        for _ in range(20):
            original = names.phone_number(rng)
            reformatted = reformat_phone(original, rng)
            assert normalize_string(reformatted) == normalize_string(original)

    def test_corrupt_digit_changes_content(self):
        rng = random.Random(0)
        original = "213-467-1108"
        corrupted = corrupt_digit(original, rng)
        assert corrupted != original
        assert normalize_string(corrupted) != normalize_string(original)

    def test_corrupt_digit_no_digits_noop(self):
        assert corrupt_digit("abc", random.Random(0)) == "abc"

    def test_typo_changes_string(self):
        rng = random.Random(1)
        assert typo("restaurant", rng) != "restaurant"

    def test_typo_short_string_noop(self):
        assert typo("ab", random.Random(0)) == "ab"

    def test_recase_preserves_normalization(self):
        rng = random.Random(0)
        for _ in range(20):
            original = "The Golden Table"
            noised = recase_and_punctuate(original, rng)
            assert normalize_string(noised) == normalize_string(original)

    def test_swap_word_order(self):
        rng = random.Random(0)
        assert swap_word_order("Sugata Sanshiro", rng) == "Sanshiro Sugata"
        assert swap_word_order("Single", rng) == "Single"

    def test_reformat_date_layouts(self):
        rng = random.Random(0)
        seen = {reformat_date("1935-01-08", rng) for _ in range(30)}
        assert seen <= {"1/8/1935", "1935"}
        assert len(seen) == 2


class TestNoiseModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(random.Random(0), format_noise=1.5)

    def test_zero_noise_is_identity(self):
        noise = NoiseModel(random.Random(0))
        assert noise.maybe_phone("213-467-1108") == "213-467-1108"
        assert noise.maybe_name("The Golden Table") == "The Golden Table"
        assert noise.maybe_date("1935-01-08") == "1935-01-08"
        assert noise.keep_fact()

    def test_format_noise_is_normalization_recoverable(self):
        noise = NoiseModel(random.Random(0), format_noise=1.0)
        for _ in range(20):
            phone = noise.maybe_phone("213-467-1108")
            assert normalize_string(phone) == normalize_string("213-467-1108")

    def test_content_noise_changes_normalized_form(self):
        noise = NoiseModel(random.Random(0), content_noise=1.0)
        changed = 0
        for _ in range(20):
            phone = noise.maybe_phone("213-467-1108")
            if normalize_string(phone) != normalize_string("213-467-1108"):
                changed += 1
        assert changed == 20

    def test_drop_fact_rate(self):
        noise = NoiseModel(random.Random(0), drop_fact=0.5)
        kept = sum(noise.keep_fact() for _ in range(1000))
        assert 400 < kept < 600


class TestNamePools:
    def test_unique_person_names(self):
        rng = random.Random(0)
        generated = names.unique_person_names(rng, 500)
        assert len(generated) == 500
        assert len(set(generated)) == 500

    def test_deterministic_for_seed(self):
        first = names.unique_person_names(random.Random(7), 50)
        second = names.unique_person_names(random.Random(7), 50)
        assert first == second

    def test_phone_format(self):
        rng = random.Random(0)
        phone = names.phone_number(rng)
        area, exchange, line = phone.split("-")
        assert len(area) == 3 and len(exchange) == 3 and len(line) == 4

    def test_date_iso_in_range(self):
        rng = random.Random(0)
        for _ in range(50):
            date = names.date_iso(rng, 1950, 1960)
            year, month, day = (int(x) for x in date.split("-"))
            assert 1950 <= year <= 1960
            assert 1 <= month <= 12
            assert 1 <= day <= 28

    def test_generators_produce_nonempty(self):
        rng = random.Random(0)
        assert names.person_name(rng)
        assert names.city_name(rng)
        assert names.restaurant_name(rng)
        assert names.movie_title(rng)
        assert names.university_name(rng)
        assert names.street_address(rng)
