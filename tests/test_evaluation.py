"""Unit tests for gold standards, metrics and report rendering."""

import pytest

from repro.core.matrix import SubsumptionMatrix
from repro.evaluation.gold import GoldStandard
from repro.evaluation.metrics import (
    PRF,
    class_threshold_sweep,
    evaluate_classes,
    evaluate_instances,
    evaluate_relations,
)
from repro.evaluation.report import (
    Table1Row,
    render_relation_alignments,
    render_table,
    render_table1,
    render_threshold_sweep,
)
from repro.rdf.terms import Relation, Resource


class TestPRF:
    def test_basic_math(self):
        prf = PRF(true_positives=8, false_positives=2, false_negatives=8)
        assert prf.precision == 0.8
        assert prf.recall == 0.5
        assert prf.f1 == pytest.approx(2 * 0.8 * 0.5 / 1.3)

    def test_empty_edge_cases(self):
        assert PRF(0, 0, 0).precision == 1.0
        assert PRF(0, 0, 0).recall == 1.0
        assert PRF(0, 0, 5).recall == 0.0
        assert PRF(0, 5, 0).precision == 0.0

    def test_renderings(self):
        prf = PRF(95, 5, 12)
        assert "%" in prf.as_percentages()
        assert "tp=95" in str(prf)


class TestGoldStandard:
    @pytest.fixture()
    def gold(self):
        gold = GoldStandard()
        gold.add_instances([("a1", "b1"), ("a2", "b2")])
        gold.add_relations([("r", "s"), ("acted", "starring^-1")])
        gold.class_inclusions_12 = {("C", "D")}
        gold.class_inclusions_21 = {("D", "C")}
        return gold

    def test_instance_lookup(self, gold):
        assert gold.has_instance_pair(Resource("a1"), Resource("b1"))
        assert not gold.has_instance_pair(Resource("a1"), Resource("b2"))
        assert gold.num_instances == 2
        assert gold.right_of(Resource("a1")) == {"b1"}

    def test_relation_lookup_direct(self, gold):
        assert gold.has_relation_pair(Relation("r"), Relation("s"))

    def test_relation_lookup_inverse_closure(self, gold):
        assert gold.has_relation_pair(Relation("r").inverse, Relation("s").inverse)
        assert gold.has_relation_pair(
            Relation("acted").inverse, Relation("starring")
        )

    def test_relation_wrong_pairing(self, gold):
        assert not gold.has_relation_pair(Relation("r").inverse, Relation("s"))

    def test_num_relations_counts_directions(self, gold):
        assert gold.num_relations == 4

    def test_class_lookup(self, gold):
        assert gold.has_class_inclusion(Resource("C"), Resource("D"))
        assert gold.has_class_inclusion(Resource("D"), Resource("C"), reverse=True)
        assert not gold.has_class_inclusion(Resource("D"), Resource("C"))

    def test_num_class_equivalences(self, gold):
        assert gold.num_class_equivalences == 1

    def test_extent_derivation(self):
        left = {"C1": frozenset({"e1", "e2"}), "C2": frozenset({"e1"})}
        right = {"D1": frozenset({"e1", "e2", "e3"}), "D2": frozenset({"e2"})}
        inc12, inc21 = GoldStandard.class_inclusions_from_extents(left, right)
        assert ("C1", "D1") in inc12
        assert ("C2", "D1") in inc12
        assert ("C1", "D2") not in inc12
        assert ("D2", "C1") in inc21


class TestEvaluateInstances:
    def test_mixed_outcome(self):
        gold = GoldStandard()
        gold.add_instances([("a1", "b1"), ("a2", "b2"), ("a3", "b3")])
        assignment = {
            Resource("a1"): (Resource("b1"), 0.9),   # correct
            Resource("a2"): (Resource("b9"), 0.8),   # wrong
            Resource("zz"): (Resource("b3"), 0.8),   # not in gold: ignored
        }
        prf = evaluate_instances(assignment, gold)
        assert prf.true_positives == 1
        assert prf.false_positives == 1
        assert prf.false_negatives == 2

    def test_perfect(self):
        gold = GoldStandard()
        gold.add_instances([("a1", "b1")])
        prf = evaluate_instances({Resource("a1"): (Resource("b1"), 1.0)}, gold)
        assert prf.precision == prf.recall == 1.0


class TestEvaluateRelations:
    def test_forward_direction(self):
        gold = GoldStandard()
        gold.add_relations([("r", "s")])
        pairs = [
            (Relation("r"), Relation("s"), 0.9),
            (Relation("r").inverse, Relation("s").inverse, 0.9),
            (Relation("q"), Relation("s"), 0.3),
        ]
        prf = evaluate_relations(pairs, gold)
        assert prf.true_positives == 2
        assert prf.false_positives == 1
        assert prf.false_negatives == 0  # both gold directions found

    def test_reverse_direction_swaps_lookup(self):
        gold = GoldStandard()
        gold.add_relations([("r", "s")])
        pairs = [(Relation("s"), Relation("r"), 0.9)]
        prf = evaluate_relations(pairs, gold, reverse=True)
        assert prf.true_positives == 1

    def test_recall_counts_relations_not_pairs(self):
        """A relation with two acceptable gold targets is not counted
        as missing when only one of them is produced."""
        gold = GoldStandard()
        gold.add_relations([("hasChild", "parent^-1"), ("hasChild", "child")])
        pairs = [(Relation("hasChild"), Relation("child"), 0.9)]
        prf = evaluate_relations(pairs, gold)
        assert prf.true_positives == 1
        # hasChild found; hasChild^-1 never produced -> 1 missing
        assert prf.false_negatives == 1


class TestEvaluateClasses:
    def test_precision(self):
        gold = GoldStandard()
        gold.class_inclusions_12 = {("C", "D")}
        pairs = [
            (Resource("C"), Resource("D"), 0.9),
            (Resource("C"), Resource("E"), 0.6),
        ]
        prf = evaluate_classes(pairs, gold)
        assert prf.precision == 0.5

    def test_threshold_sweep_monotone_pairs(self):
        gold = GoldStandard()
        gold.class_inclusions_12 = {("C", "D")}
        matrix = SubsumptionMatrix()
        matrix.set(Resource("C"), Resource("D"), 0.9)
        matrix.set(Resource("X"), Resource("D"), 0.3)  # wrong, low score
        points = class_threshold_sweep(matrix, gold, thresholds=(0.2, 0.5, 0.95))
        assert [p.num_pairs for p in points] == [2, 1, 0]
        assert points[0].precision == 0.5
        assert points[1].precision == 1.0
        assert points[2].precision == 1.0  # vacuous
        assert [p.num_classes for p in points] == [2, 1, 0]

    def test_sweep_exclusion(self):
        gold = GoldStandard()
        matrix = SubsumptionMatrix()
        matrix.set(Resource("TopLevel"), Resource("D"), 0.9)
        points = class_threshold_sweep(
            matrix, gold, thresholds=(0.5,), exclude={"TopLevel"}
        )
        assert points[0].num_pairs == 0


class TestReportRendering:
    def test_render_table_alignment(self):
        table = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_table1_row_with_results(self):
        row = Table1Row(
            dataset="Person",
            system="paris",
            gold_instances=500,
            instances=PRF(500, 0, 0),
            gold_classes=4,
            classes=PRF(4, 0, 0),
            gold_relations=20,
            relations=PRF(20, 0, 0),
        )
        rendered = render_table1([row])
        assert "Person" in rendered
        assert "100%" in rendered

    def test_table1_row_reported_only(self):
        row = Table1Row(
            dataset="Rest.",
            system="ObjCoref",
            gold_instances=112,
            instances=None,
            gold_classes=4,
            classes=None,
            gold_relations=12,
            relations=None,
            reported=(None, None, 0.90),
        )
        rendered = render_table1([row])
        assert "90%" in rendered
        assert "-" in rendered

    def test_render_relation_alignments(self, tiny_pair):
        from repro import align
        left, right = tiny_pair
        result = align(left, right)
        rendered = render_relation_alignments(result, threshold=0.1)
        assert "bornIn" in rendered
        assert "⊆" in rendered

    def test_render_threshold_sweep(self):
        from repro.evaluation.metrics import ThresholdPoint
        rendered = render_threshold_sweep(
            [ThresholdPoint(0.5, 0.9, 10, 20)]
        )
        assert "0.5" in rendered
        assert "0.900" in rendered


class TestAsciiChart:
    def test_renders_points(self):
        from repro.evaluation import ascii_chart
        chart = ascii_chart([(0.1, 0.5), (0.5, 0.8), (0.9, 1.0)], height=5)
        assert chart.count("*") == 3
        assert "1.000" in chart
        assert "0.500" in chart

    def test_flat_series(self):
        from repro.evaluation import ascii_chart
        chart = ascii_chart([(0.1, 0.7), (0.9, 0.7)], height=4)
        assert chart.count("*") == 2

    def test_empty(self):
        from repro.evaluation import ascii_chart
        assert ascii_chart([]) == "(no data)"

    def test_figure_helpers(self):
        from repro.evaluation import figure1_chart, figure2_chart
        from repro.evaluation.metrics import ThresholdPoint
        points = [ThresholdPoint(0.1, 0.8, 100, 200),
                  ThresholdPoint(0.9, 1.0, 40, 60)]
        assert "Precision" in figure1_chart(points)
        assert "Number of classes" in figure2_chart(points)
