"""Unit tests for alignment persistence and the CLI."""

import pytest

from repro import align, load_result, save_result, write_sameas_links
from repro.cli import main
from repro.rdf import ntriples
from repro.rdf.terms import Relation


@pytest.fixture()
def result(tiny_pair):
    left, right = tiny_pair
    return align(left, right)


class TestSaveLoad:
    def test_round_trip_instances(self, result, tmp_path):
        save_result(result, tmp_path / "out")
        loaded = load_result(tmp_path / "out")
        assert {
            (l.name, r.name, round(p, 6)) for l, r, p in loaded.instances.items()
        } == {(l.name, r.name, round(p, 6)) for l, r, p in result.instances.items()}

    def test_round_trip_relations_and_classes(self, result, tmp_path):
        save_result(result, tmp_path / "out")
        loaded = load_result(tmp_path / "out")
        assert loaded.relations12.get(
            Relation("bornIn"), Relation("birthPlace")
        ) == pytest.approx(
            result.relations12.get(Relation("bornIn"), Relation("birthPlace")),
            abs=1e-6,
        )
        assert len(loaded.classes12) == len(result.classes12)

    def test_round_trip_metadata(self, result, tmp_path):
        save_result(result, tmp_path / "out")
        loaded = load_result(tmp_path / "out")
        assert loaded.left_name == result.left_name
        assert loaded.right_name == result.right_name
        assert loaded.converged == result.converged

    def test_assignment_recomputed(self, result, tmp_path):
        save_result(result, tmp_path / "out")
        loaded = load_result(tmp_path / "out")
        assert {
            (l.name, r.name) for l, (r, _p) in loaded.assignment12.items()
        } == {(l.name, r.name) for l, (r, _p) in result.assignment12.items()}

    def test_expected_files_written(self, result, tmp_path):
        directory = save_result(result, tmp_path / "out")
        names = {p.name for p in directory.iterdir()}
        assert {
            "instances.tsv", "assignment.tsv", "relations12.tsv",
            "relations21.tsv", "classes12.tsv", "classes21.tsv", "meta.tsv",
        } <= names


class TestSameAsExport:
    def test_links_written(self, result, tmp_path):
        path = tmp_path / "links.nt"
        count = write_sameas_links(result.assignment12, path)
        assert count == len(result.assignment12)
        content = path.read_text()
        assert "owl#sameAs" in content
        assert content.count("\n") == count

    def test_threshold_filters(self, result, tmp_path):
        path = tmp_path / "links.nt"
        count = write_sameas_links(result.assignment12, path, threshold=1.1)
        assert count == 0
        assert path.read_text() == ""


class TestCli:
    @pytest.fixture()
    def nt_files(self, tiny_pair, tmp_path):
        left, right = tiny_pair
        left_path = tmp_path / "left.nt"
        right_path = tmp_path / "right.nt"
        ntriples.write_ntriples(left, left_path)
        ntriples.write_ntriples(right, right_path)
        return str(left_path), str(right_path)

    def test_align_command(self, nt_files, tmp_path, capsys):
        left, right = nt_files
        out = tmp_path / "alignment"
        code = main(["align", left, right, "--out", str(out), "--print-pairs"])
        assert code == 0
        assert (out / "sameas.nt").exists()
        captured = capsys.readouterr()
        assert "p1" in captured.out  # printed pairs

    def test_align_with_options(self, nt_files, tmp_path):
        left, right = nt_files
        out = tmp_path / "alignment2"
        code = main([
            "align", left, right, "--out", str(out),
            "--similarity", "normalized", "--theta", "0.05",
            "--name-prior", "--max-iterations", "5",
        ])
        assert code == 0
        assert (out / "instances.tsv").read_text()

    def test_stats_command(self, nt_files, capsys):
        left, right = nt_files
        assert main(["stats", left, right]) == 0
        captured = capsys.readouterr()
        assert "#Instances" in captured.out

    def test_convert_command(self, nt_files, tmp_path, capsys):
        left, _right = nt_files
        target = tmp_path / "converted.tsv"
        assert main(["convert", left, str(target)]) == 0
        assert target.exists()
        # and back
        back = tmp_path / "back.nt"
        assert main(["convert", str(target), str(back)]) == 0
        assert back.read_text()

    def test_workers_flag_output_byte_identical(self, nt_files, tmp_path, capsys):
        """`align --workers 4` writes byte-identical output to `--workers 1`."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("byte-identity of the process backend requires fork")
        left, right = nt_files
        outputs = {}
        for workers in (1, 4):
            out = tmp_path / f"alignment-w{workers}"
            code = main([
                "align", left, right, "--out", str(out),
                "--workers", str(workers), "--print-pairs",
            ])
            assert code == 0
            captured = capsys.readouterr()
            files = {
                path.name: path.read_bytes() for path in sorted(out.iterdir())
            }
            outputs[workers] = (files, captured.out)
        assert set(outputs[1][0]) == set(outputs[4][0])
        for name, blob in outputs[1][0].items():
            assert outputs[4][0][name] == blob, f"{name} differs between 1/4 workers"
        assert outputs[1][1] == outputs[4][1]  # printed pairs identical too

    def test_workers_flag_thread_backend(self, nt_files, tmp_path):
        left, right = nt_files
        out = tmp_path / "alignment-threads"
        code = main([
            "align", left, right, "--out", str(out),
            "--workers", "2", "--parallel-backend", "thread",
            "--shard-size", "1",
        ])
        assert code == 0
        assert (out / "instances.tsv").read_text()

    def test_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["align", "/nonexistent.nt", "/nonexistent2.nt",
                  "--out", str(tmp_path / "x")])

    def test_unsupported_extension_errors(self, tmp_path):
        bad = tmp_path / "file.xyz"
        bad.write_text("")
        with pytest.raises(SystemExit):
            main(["stats", str(bad)])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestParallelOptionsWiring:
    """Every alignment-running subcommand accepts the parallel knobs."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["align", "l.nt", "r.nt"],
            ["multi", "a.nt", "b.nt", "c.nt"],
            ["explain", "l.nt", "r.nt", "x", "y"],
            ["demo", "person"],
            ["serve", "l.nt", "r.nt", "--state-dir", "state"],
        ],
    )
    def test_parallel_flags_parse(self, argv):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            argv + ["--workers", "3", "--shard-size", "7", "--parallel-backend", "thread"]
        )
        assert args.workers == 3
        assert args.shard_size == 7
        assert args.parallel_backend == "thread"

    def test_parallel_defaults_are_sequential(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["demo", "kb"])
        assert args.workers == 1
        assert args.shard_size is None
        assert args.parallel_backend == "process"

    def test_demo_runs_with_workers(self, capsys):
        assert main(["demo", "person", "--workers", "2",
                     "--parallel-backend", "thread"]) == 0
        captured = capsys.readouterr()
        assert "instances:" in captured.out

    def test_serve_parser(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--state-dir", "statedir", "--port", "0", "--host", "0.0.0.0"]
        )
        assert args.state_dir == "statedir"
        assert args.port == 0
        assert args.left is None and args.right is None
        assert args.handler.__name__ == "cmd_serve"

    def test_serve_without_inputs_or_snapshot_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["serve", "--state-dir", str(tmp_path / "empty")])

    def test_serve_streaming_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve", "l.nt", "r.nt", "--state-dir", "state",
                "--wal",
                "--watch", "deltas.ndjson",
                "--watch", "spool-dir",
                "--max-batch", "64",
                "--max-lag-ms", "25",
                "--max-queue", "512",
            ]
        )
        assert args.wal is True
        assert args.watch == ["deltas.ndjson", "spool-dir"]
        assert args.max_batch == 64
        assert args.max_lag_ms == 25.0
        assert args.max_queue == 512

    def test_serve_streaming_defaults_are_off(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "l.nt", "r.nt", "--state-dir", "state"]
        )
        assert args.wal is False and args.watch == []
        assert args.max_batch == 32
        assert args.max_lag_ms == 50.0
        assert args.max_queue == 256

    def test_replay_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["replay", "state/wal.ndjson", "--state-dir", "state", "--no-snapshot"]
        )
        assert args.wal == "state/wal.ndjson"
        assert args.state_dir == "state"
        assert args.no_snapshot is True
        assert args.handler.__name__ == "cmd_replay"

    def test_serve_wal_lifecycle_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve", "l.nt", "r.nt", "--state-dir", "state", "--wal",
                "--wal-segment-bytes", "65536",
                "--wal-group-commit-ms", "5",
            ]
        )
        assert args.wal_segment_bytes == 65536
        assert args.wal_group_commit_ms == 5.0
        defaults = build_parser().parse_args(
            ["serve", "l.nt", "r.nt", "--state-dir", "state"]
        )
        # Segmented by default: rotation bounds what a tailing replica
        # re-reads per poll and lets compaction reclaim covered history.
        assert defaults.wal_segment_bytes == 16 * 1024 * 1024
        assert defaults.wal_group_commit_ms == 0.0

    def test_replica_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "replica", "http://primary:8765",
                "--state-dir", "rep1", "--port", "0",
                "--poll-ms", "20", "--replica-batch", "64",
                "--snapshot-every", "5", "--workers", "2",
            ]
        )
        assert args.source == "http://primary:8765"
        assert args.state_dir == "rep1"
        assert args.poll_ms == 20.0
        assert args.replica_batch == 64
        assert args.snapshot_every == 5
        assert args.workers == 2
        assert args.handler.__name__ == "cmd_replica"
        defaults = build_parser().parse_args(["replica", "statedir"])
        assert defaults.state_dir is None and defaults.port == 8766

    def test_route_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "route", "--primary", "http://p:8765",
                "--replica", "http://r1:8766", "--replica", "http://r2:8767",
                "--port", "0", "--check-interval-ms", "250",
            ]
        )
        assert args.primary == "http://p:8765"
        assert args.replica == ["http://r1:8766", "http://r2:8767"]
        assert args.check_interval_ms == 250.0
        assert args.handler.__name__ == "cmd_route"

    def test_watch_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "watch", "http://primary:8765",
                "--entity", "Elvis", "--epsilon", "0.05",
                "--after", "3", "--timeout", "10", "--count", "2",
            ]
        )
        assert args.url == "http://primary:8765"
        assert args.entity == "Elvis"
        assert args.epsilon == 0.05
        assert args.after == 3
        assert args.timeout == 10.0
        assert args.count == 2
        assert args.handler.__name__ == "cmd_watch"
        defaults = build_parser().parse_args(
            ["watch", "http://primary:8765", "--entity", "Elvis"]
        )
        assert defaults.epsilon == 0.0
        assert defaults.after is None
        assert defaults.timeout == 25.0
        assert defaults.count == 0

    def test_wal_compact_parser_and_run(self, tmp_path):
        from repro.cli import build_parser
        from repro.core.config import ParisConfig
        from repro.datasets.incremental import family_addition, family_pair
        from repro.service import AlignmentService, Delta
        from repro.service.stream import WriteAheadLog

        args = build_parser().parse_args(["wal", "compact", "--state-dir", "state"])
        assert args.state_dir == "state"
        assert args.handler.__name__ == "cmd_wal_compact"

        # End to end: rotated WAL + covering snapshot → segments gone.
        left, right = family_pair(4)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        wal = WriteAheadLog(tmp_path / "wal.ndjson", segment_bytes=400)
        for step in range(3):
            add1, add2 = family_addition(4 + step, 1)
            delta = Delta(add1=tuple(add1), add2=tuple(add2))
            service.apply_delta(delta, wal_offset=wal.append(delta, "w", step + 1))
        wal.close()
        service.snapshot(tmp_path)
        assert WriteAheadLog(tmp_path / "wal.ndjson", read_only=True).sealed_segments()
        size_before = sum(
            path.stat().st_size for path in tmp_path.glob("wal*.ndjson")
        )
        assert main(["wal", "compact", "--state-dir", str(tmp_path)]) == 0
        assert not WriteAheadLog(
            tmp_path / "wal.ndjson", read_only=True
        ).sealed_segments()
        size_after = sum(path.stat().st_size for path in tmp_path.glob("wal*.ndjson"))
        assert size_after < size_before
        # The remaining log still replays onto the snapshot cleanly.
        assert main(
            ["replay", str(tmp_path / "wal.ndjson"), "--state-dir", str(tmp_path)]
        ) == 0

    def test_replay_catches_up_a_stale_snapshot(self, tmp_path):
        """End-to-end offline recovery: snapshot + WAL suffix →
        caught-up snapshot whose scores match the full stream."""
        from repro.core.config import ParisConfig
        from repro.datasets.incremental import family_addition, family_pair
        from repro.service import AlignmentService, Delta, load_state
        from repro.service.stream import WriteAheadLog

        left, right = family_pair(4)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        service.snapshot(tmp_path)
        wal = WriteAheadLog(tmp_path / "wal.ndjson")
        add1, add2 = family_addition(4, 1)
        wal.append(Delta(add1=tuple(add1), add2=tuple(add2)), "writer", 1)
        wal.close()
        assert main(
            ["replay", str(tmp_path / "wal.ndjson"), "--state-dir", str(tmp_path)]
        ) == 0
        caught_up = load_state(tmp_path)
        assert caught_up.wal_offset == 1
        resumed = AlignmentService.from_state(caught_up)
        assert resumed.pair("p4a", "q4a")["probability"] > 0.9
        # Idempotent: a second replay finds nothing to do.
        assert main(
            ["replay", str(tmp_path / "wal.ndjson"), "--state-dir", str(tmp_path)]
        ) == 0
        assert load_state(tmp_path).version == caught_up.version


class TestCliMultiAndExplain:
    @pytest.fixture()
    def nt_files(self, tiny_pair, tmp_path):
        left, right = tiny_pair
        left_path = tmp_path / "left.nt"
        right_path = tmp_path / "right.nt"
        ntriples.write_ntriples(left, left_path)
        ntriples.write_ntriples(right, right_path)
        return str(left_path), str(right_path)

    def test_multi_command(self, nt_files, tmp_path, capsys):
        left, right = nt_files
        out = tmp_path / "clusters.tsv"
        assert main(["multi", left, right, "--out", str(out)]) == 0
        lines = out.read_text().splitlines()
        assert lines[0].startswith("confidence")
        assert len(lines) >= 3  # header + two clusters

    def test_multi_requires_two_files(self, nt_files, tmp_path):
        left, _right = nt_files
        with pytest.raises(SystemExit):
            main(["multi", left, "--out", str(tmp_path / "c.tsv")])

    def test_explain_command(self, nt_files, capsys):
        left, right = nt_files
        assert main(["explain", left, right, "p1", "x9"]) == 0
        captured = capsys.readouterr()
        assert "p1 ≡ x9" in captured.out
        assert "reported probability" in captured.out

    def test_explain_unmatched_pair(self, nt_files, capsys):
        left, right = nt_files
        assert main(["explain", left, right, "p1", "x7"]) == 0
        captured = capsys.readouterr()
        assert "evidence items: 0" in captured.out


class TestCliStatsUrlAndLogging:
    """`repro stats URL` (service scraping) and the global log flags."""

    def test_stats_url_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["stats", "http://127.0.0.1:8765", "--watch", "2", "--raw"]
        )
        assert args.files == ["http://127.0.0.1:8765"]
        assert args.watch == 2.0
        assert args.raw is True
        assert args.handler.__name__ == "cmd_stats"
        defaults = build_parser().parse_args(["stats", "a.nt"])
        assert defaults.watch is None and defaults.raw is False

    def test_log_flags_parse_and_default(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["--log-level", "debug", "--log-format", "json", "demo", "person"]
        )
        assert args.log_level == "debug" and args.log_format == "json"
        defaults = build_parser().parse_args(["demo", "person"])
        assert defaults.log_level == "info" and defaults.log_format == "text"

    def test_watch_and_raw_require_a_url(self, tiny_pair, tmp_path):
        from repro.rdf import ntriples as nt

        left, _right = tiny_pair
        path = tmp_path / "left.nt"
        nt.write_ntriples(left, path)
        with pytest.raises(SystemExit):
            main(["stats", str(path), "--raw"])
        with pytest.raises(SystemExit):
            main(["stats", str(path), "--watch", "1"])

    def test_mixing_url_and_files_errors(self):
        with pytest.raises(SystemExit):
            main(["stats", "http://127.0.0.1:1", "extra.nt"])

    @pytest.fixture()
    def live_server(self, tiny_pair, tmp_path):
        import threading

        from repro.core.config import ParisConfig
        from repro.service import AlignmentService
        from repro.service.server import build_server

        left, right = tiny_pair
        service = AlignmentService.cold_start(left, right, ParisConfig())
        server = build_server(service, "127.0.0.1", 0, state_dir=tmp_path)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    def test_stats_url_pretty_prints_service_stats(self, live_server, capsys):
        import json as json_module

        assert main(["stats", live_server]) == 0
        captured = capsys.readouterr()
        payload = json_module.loads(captured.out)
        assert payload["status"] == "ok"
        assert "last_align_profile" in payload
        assert payload["last_align_profile"]["span"] == "align.cold"

    def test_stats_url_raw_scrapes_prometheus_text(self, live_server, capsys):
        assert main(["stats", live_server, "--raw"]) == 0
        captured = capsys.readouterr()
        assert "# TYPE repro_requests_total counter" in captured.out
        assert "repro_instance_pairs" in captured.out
