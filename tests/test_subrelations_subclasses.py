"""Hand-verified tests for Eq. 12 (sub-relations) and Eq. 17 (sub-classes)."""

import pytest

from repro.core.literal_index import LiteralIndex
from repro.core.store import EquivalenceStore
from repro.core.subclasses import closed_classes_of, score_class, subclass_pass
from repro.core.subrelations import score_relation, subrelation_pass
from repro.core.view import EquivalenceView
from repro.literals import IdentitySimilarity
from repro.rdf.builder import OntologyBuilder
from repro.rdf.terms import Relation, Resource


def make_view(onto1, onto2, store):
    similarity = IdentitySimilarity()
    return EquivalenceView(
        store,
        LiteralIndex(onto2, similarity),
        LiteralIndex(onto1, similarity),
    )


class TestScoreRelationEq12:
    def test_hand_computed_single_pair(self):
        """r(a,b), r'(a',b'), Pr(a≡a')=0.8, Pr(b≡b')=0.5:
        numerator = denominator = 1-(1-0.4) = 0.4 → Pr(r⊆r') = 1."""
        onto1 = OntologyBuilder("o1").fact("a", "r", "b").build()
        onto2 = OntologyBuilder("o2").fact("a2", "r2", "b2").build()
        store = EquivalenceStore()
        store.set(Resource("a"), Resource("a2"), 0.8)
        store.set(Resource("b"), Resource("b2"), 0.5)
        scores = score_relation(
            Relation("r"), onto1, onto2, make_view(onto1, onto2, store), max_pairs=100
        )
        assert scores[Relation("r2")] == pytest.approx(1.0)

    def test_partial_inclusion(self):
        """Two statements of r; only one has an r'-connected counterpart
        pair → Pr(r⊆r') = 0.5 (with certain equivalences)."""
        onto1 = OntologyBuilder("o1").fact("a", "r", "b").fact("c", "r", "d").build()
        onto2 = (
            OntologyBuilder("o2")
            .fact("a2", "r2", "b2")
            .fact("c2", "other", "d2")
            .build()
        )
        store = EquivalenceStore()
        for left, right in (("a", "a2"), ("b", "b2"), ("c", "c2"), ("d", "d2")):
            store.set(Resource(left), Resource(right), 1.0)
        scores = score_relation(
            Relation("r"), onto1, onto2, make_view(onto1, onto2, store), max_pairs=100
        )
        assert scores[Relation("r2")] == pytest.approx(0.5)
        assert scores[Relation("other")] == pytest.approx(0.5)

    def test_discovers_inverse_alignment(self):
        """r(a,b) vs r2(b2,a2): Pr(r ⊆ r2⁻) should be found."""
        onto1 = OntologyBuilder("o1").fact("a", "acted", "b").build()
        onto2 = OntologyBuilder("o2").fact("b2", "starring", "a2").build()
        store = EquivalenceStore()
        store.set(Resource("a"), Resource("a2"), 1.0)
        store.set(Resource("b"), Resource("b2"), 1.0)
        scores = score_relation(
            Relation("acted"), onto1, onto2, make_view(onto1, onto2, store), max_pairs=100
        )
        assert scores[Relation("starring").inverse] == pytest.approx(1.0)

    def test_no_evidence_returns_none(self):
        onto1 = OntologyBuilder("o1").fact("a", "r", "b").build()
        onto2 = OntologyBuilder("o2").fact("a2", "r2", "b2").build()
        scores = score_relation(
            Relation("r"),
            onto1,
            onto2,
            make_view(onto1, onto2, EquivalenceStore()),
            max_pairs=100,
        )
        assert scores is None

    def test_pair_cap_limits_work(self):
        builder1 = OntologyBuilder("o1")
        builder2 = OntologyBuilder("o2")
        store = EquivalenceStore()
        for i in range(20):
            builder1.fact(f"a{i}", "r", f"b{i}")
            builder2.fact(f"a{i}2", "r2", f"b{i}2")
            store.set(Resource(f"a{i}"), Resource(f"a{i}2"), 1.0)
            store.set(Resource(f"b{i}"), Resource(f"b{i}2"), 1.0)
        onto1, onto2 = builder1.build(), builder2.build()
        scores = score_relation(
            Relation("r"), onto1, onto2, make_view(onto1, onto2, store), max_pairs=5
        )
        # still a valid ratio computed over the examined sample
        assert scores[Relation("r2")] == pytest.approx(1.0)

    def test_literal_valued_relations_align(self):
        """Relations to literals align through the literal similarity."""
        onto1 = OntologyBuilder("o1").value("a", "name", "Elvis").build()
        onto2 = OntologyBuilder("o2").value("a2", "label", "Elvis").build()
        store = EquivalenceStore()
        store.set(Resource("a"), Resource("a2"), 1.0)
        scores = score_relation(
            Relation("name"), onto1, onto2, make_view(onto1, onto2, store), max_pairs=100
        )
        assert scores[Relation("label")] == pytest.approx(1.0)

    def test_pass_respects_threshold_and_prior(self):
        onto1 = OntologyBuilder("o1").fact("a", "r", "b").value("z", "s", "v").build()
        onto2 = OntologyBuilder("o2").fact("a2", "r2", "b2").build()
        store = EquivalenceStore()
        store.set(Resource("a"), Resource("a2"), 1.0)
        store.set(Resource("b"), Resource("b2"), 1.0)
        matrix = subrelation_pass(
            onto1,
            onto2,
            make_view(onto1, onto2, store),
            truncation_threshold=0.1,
            max_pairs=100,
            bootstrap_theta=0.1,
        )
        assert matrix.get(Relation("r"), Relation("r2")) == pytest.approx(1.0)
        # relation s has no evidence: keeps the bootstrap prior
        assert matrix.get(Relation("s"), Relation("r2")) == 0.1


class TestScoreClassEq17:
    @pytest.fixture()
    def class_pair(self):
        onto1 = (
            OntologyBuilder("o1")
            .type("a", "C")
            .type("b", "C")
            .fact("a", "r", "pad1")   # make a/b instances with data too
            .fact("b", "r", "pad2")
            .build()
        )
        onto2 = (
            OntologyBuilder("o2")
            .type("x", "D")
            .subclass("D", "E")
            .fact("x", "r2", "pad3")
            .build()
        )
        store = EquivalenceStore()
        store.set(Resource("a"), Resource("x"), 0.9)
        return onto1, onto2, store

    def test_hand_computed_ratio(self, class_pair):
        """C={a,b}, D={x}, Pr(a≡x)=0.9 → Pr(C⊆D) = 0.9/2 = 0.45."""
        onto1, onto2, store = class_pair
        scores = score_class(
            Resource("C"),
            onto1,
            make_view(onto1, onto2, store),
            closed_classes_of(onto2),
            max_instances=100,
        )
        assert scores[Resource("D")] == pytest.approx(0.45)

    def test_superclass_inherits_extension(self, class_pair):
        """x is also an instance of E (D ⊆ E), so Pr(C⊆E) = 0.45 too."""
        onto1, onto2, store = class_pair
        scores = score_class(
            Resource("C"),
            onto1,
            make_view(onto1, onto2, store),
            closed_classes_of(onto2),
            max_instances=100,
        )
        assert scores[Resource("E")] == pytest.approx(0.45)

    def test_full_extension_match_scores_one(self):
        onto1 = OntologyBuilder("o1").type("a", "C").build()
        onto2 = OntologyBuilder("o2").type("x", "D").build()
        store = EquivalenceStore()
        store.set(Resource("a"), Resource("x"), 1.0)
        scores = score_class(
            Resource("C"),
            onto1,
            make_view(onto1, onto2, store),
            closed_classes_of(onto2),
            max_instances=100,
        )
        assert scores[Resource("D")] == pytest.approx(1.0)

    def test_empty_class_scores_nothing(self, class_pair):
        onto1, onto2, store = class_pair
        scores = score_class(
            Resource("EmptyClass"),
            onto1,
            make_view(onto1, onto2, store),
            closed_classes_of(onto2),
            max_instances=100,
        )
        assert scores == {}

    def test_subclass_pass_both_thresholded(self, class_pair):
        onto1, onto2, store = class_pair
        matrix = subclass_pass(
            onto1,
            onto2,
            make_view(onto1, onto2, store),
            truncation_threshold=0.5,
            max_instances=100,
        )
        # 0.45 < 0.5: truncated away
        assert matrix.get(Resource("C"), Resource("D")) == 0.0

    def test_closed_classes_of(self, class_pair):
        _onto1, onto2, _store = class_pair
        closed = closed_classes_of(onto2)
        assert closed[Resource("x")] == {Resource("D"), Resource("E")}

    def test_instance_cap(self):
        builder1 = OntologyBuilder("o1")
        builder2 = OntologyBuilder("o2")
        store = EquivalenceStore()
        for i in range(10):
            builder1.type(f"a{i}", "C")
            builder2.type(f"x{i}", "D")
            store.set(Resource(f"a{i}"), Resource(f"x{i}"), 1.0)
        onto1, onto2 = builder1.build(), builder2.build()
        scores = score_class(
            Resource("C"),
            onto1,
            make_view(onto1, onto2, store),
            closed_classes_of(onto2),
            max_instances=4,
        )
        # ratio over the examined sample stays unbiased
        assert scores[Resource("D")] == pytest.approx(1.0)
