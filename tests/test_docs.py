"""Documentation is part of the contract: routes and links are tested.

Two checks keep ``docs/`` honest:

* every route the servers actually dispatch (the ``ROUTES`` tables in
  ``service.server`` and ``service.replica.router``) is documented in
  ``docs/api.md`` — adding an endpoint without documenting it fails;
* every relative markdown link (and in-page anchor) in the docs,
  README and ROADMAP resolves.

These run in the CI ``docs-check`` job alongside the API examples.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.service import server as server_module
from repro.service.replica import router as router_module

REPO = Path(__file__).resolve().parent.parent
DOCS = [
    REPO / "README.md",
    REPO / "ROADMAP.md",
    REPO / "docs" / "api.md",
    REPO / "docs" / "operations.md",
    REPO / "docs" / "architecture.md",
]

_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _escaped(route: str) -> str:
    return route.replace("<", "&lt;").replace(">", "&gt;")


def _anchor_of(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    text = re.sub(r"[`*_]", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


class TestRouteCoverage:
    def test_docs_exist(self):
        for path in DOCS:
            assert path.is_file(), f"missing documentation file: {path.name}"

    @pytest.mark.parametrize(
        "module", [server_module, router_module], ids=["server", "router"]
    )
    def test_every_route_is_documented(self, module):
        api = (REPO / "docs" / "api.md").read_text(encoding="utf-8")
        undocumented = [
            route
            for route in module.ROUTES
            if route not in api and _escaped(route) not in api
        ]
        assert not undocumented, (
            f"routes missing from docs/api.md: {undocumented} — "
            "document the endpoint (and keep ROUTES in sync)"
        )

    @pytest.mark.parametrize(
        "module", [server_module, router_module], ids=["server", "router"]
    )
    def test_route_table_matches_the_dispatcher(self, module):
        """The ROUTES table itself must not drift from the handler
        code: every literal path it names appears in the module
        source."""
        source = Path(module.__file__).read_text(encoding="utf-8")
        for route in module.ROUTES:
            path = route.split(" ", 1)[1]
            if path == "*":
                continue
            head = path.lstrip("/").split("/", 1)[0]
            assert head in source, f"ROUTES names {route} but {head!r} not dispatched"


class TestMarkdownLinks:
    @pytest.mark.parametrize("path", DOCS, ids=lambda p: p.name)
    def test_relative_links_resolve(self, path):
        text = path.read_text(encoding="utf-8")
        anchors = {_anchor_of(h) for h in _HEADING.findall(text)}
        broken = []
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part, _, anchor = target.partition("#")
            if not file_part:
                if anchor not in anchors:
                    broken.append(target)
                continue
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                broken.append(target)
                continue
            if anchor and resolved.suffix == ".md":
                linked = resolved.read_text(encoding="utf-8")
                linked_anchors = {_anchor_of(h) for h in _HEADING.findall(linked)}
                if anchor not in linked_anchors:
                    broken.append(target)
        assert not broken, f"broken links in {path.name}: {broken}"

    def test_operations_metrics_table_covers_the_registry(self):
        """Every metric the processes actually register must appear in
        the operations guide's metrics table (ROADMAP's old table
        migrated here; this keeps it from rotting)."""
        import repro.cli  # noqa: F401  - imports the whole serving stack
        from repro.obs.metrics import REGISTRY

        operations = (REPO / "docs" / "operations.md").read_text(encoding="utf-8")
        missing = [
            name
            for name in REGISTRY.names()
            if f"`{name.removeprefix('repro_')}`" not in operations
        ]
        assert not missing, f"metrics missing from docs/operations.md: {missing}"
