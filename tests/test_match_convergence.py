"""Unit tests for the triple-pattern query API and convergence tools."""

import pytest

from repro import OntologyBuilder, ParisConfig, align
from repro.analysis import convergence_series, detect_oscillation, render_convergence
from repro.rdf.terms import Literal, Relation, Resource
from repro.rdf.triples import Triple


@pytest.fixture()
def onto():
    return (
        OntologyBuilder("t")
        .fact("a", "r", "b")
        .fact("a", "r", "c")
        .fact("d", "r", "b")
        .value("a", "s", "v")
        .build()
    )


class TestMatch:
    def test_subject_only(self, onto):
        triples = set(onto.match(Resource("a")))
        assert triples == {
            Triple(Resource("a"), Relation("r"), Resource("b")),
            Triple(Resource("a"), Relation("r"), Resource("c")),
            Triple(Resource("a"), Relation("s"), Literal("v")),
        }

    def test_relation_only(self, onto):
        assert len(list(onto.match(None, Relation("r")))) == 3

    def test_object_only(self, onto):
        triples = set(onto.match(None, None, Resource("b")))
        assert triples == {
            Triple(Resource("a"), Relation("r"), Resource("b")),
            Triple(Resource("d"), Relation("r"), Resource("b")),
        }

    def test_object_literal(self, onto):
        triples = list(onto.match(None, None, Literal("v")))
        assert triples == [Triple(Resource("a"), Relation("s"), Literal("v"))]

    def test_fully_bound_present(self, onto):
        pattern = (Resource("a"), Relation("r"), Resource("b"))
        assert list(onto.match(*pattern)) == [Triple(*pattern)]

    def test_fully_bound_absent(self, onto):
        assert list(onto.match(Resource("a"), Relation("r"), Resource("zz"))) == []

    def test_subject_and_object(self, onto):
        triples = list(onto.match(Resource("a"), None, Resource("b")))
        assert triples == [Triple(Resource("a"), Relation("r"), Resource("b"))]

    def test_relation_and_object(self, onto):
        triples = set(onto.match(None, Relation("r"), Resource("b")))
        assert len(triples) == 2

    def test_inverted_relation_normalized(self, onto):
        triples = set(onto.match(None, Relation("r", inverted=True)))
        # yields the forward statements
        assert all(not t.relation.inverted for t in triples)
        assert len(triples) == 3

    def test_all_wildcards(self, onto):
        assert len(list(onto.match())) == onto.num_facts

    def test_unknown_terms_empty(self, onto):
        assert list(onto.match(Resource("nobody"))) == []
        assert list(onto.match(None, Relation("nothing"))) == []
        assert list(onto.match(None, None, Resource("nowhere"))) == []


class TestConvergenceTools:
    def test_series_extraction(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        points = convergence_series(result)
        assert len(points) == result.num_iterations
        assert points[0].change_fraction is None
        assert all(p.assignment_mass >= 0 for p in points)
        # mass grows (or holds) as scores harden
        assert points[-1].assignment_mass >= points[0].assignment_mass

    def test_no_oscillation_on_clean_pair(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right, ParisConfig(max_iterations=5,
                                                convergence_threshold=0.0,
                                                detect_cycles=False))
        assert detect_oscillation(result) == {}

    def test_oscillation_detected_on_ambiguous_pair(self):
        """Two chain twins sharing all values flip between matches."""
        left = (
            OntologyBuilder("l")
            .value("a1", "name", "Twin")
            .value("a1", "city", "Here")
            .value("a2", "name", "Twin")
            .value("a2", "city", "There")
            .build()
        )
        right = (
            OntologyBuilder("r")
            .value("b1", "label", "Twin")
            .value("b1", "town", "There")
            .value("b2", "label", "Twin")
            .value("b2", "town", "Here")
            .build()
        )
        result = align(
            left, right,
            ParisConfig(max_iterations=6, convergence_threshold=0.0,
                        detect_cycles=False),
        )
        # whether or not these toy twins oscillate depends on scores;
        # the API contract is: every reported trajectory is a 2-cycle.
        for _entity, names in detect_oscillation(result).items():
            assert names[-1] == names[-3]
            assert names[-1] != names[-2]

    def test_render(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right)
        text = render_convergence(convergence_series(result))
        assert "iter" in text
        assert "assignment mass" in text

    def test_short_runs_have_no_oscillation(self, tiny_pair):
        left, right = tiny_pair
        result = align(left, right, ParisConfig(max_iterations=2,
                                                convergence_threshold=0.0))
        assert detect_oscillation(result) == {}
