"""End-to-end delta provenance (PR 9).

Covers the provenance layer bottom-up: trace-context extraction, the
:class:`~repro.obs.provenance.ProvenanceRing` (stamping, histogram
gating, eviction, coalescing provenance), WAL schema v2 backward
compatibility against a hand-written pre-PR-9 (v1) log, restart
replay without double-counted histograms, replica-side registration
of shipped records, the ``X-Request-Id`` echo contract on all three
HTTP roles, the ``GET /provenance`` endpoint, the ``repro trace``
CLI, and the ``stats --watch`` reconnect backoff.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import (
    _merge_timelines,
    _watch_service_stats,
    build_parser,
    cmd_trace,
)
from repro.core.aligner import align
from repro.core.config import ParisConfig
from repro.datasets.incremental import family_addition, family_pair
from repro.obs.provenance import (
    DELTA_STAGE_SECONDS,
    STAGE_LEGS,
    STAGES,
    ProvenanceRing,
    extract_trace_id,
    new_trace_id,
    sanitize_trace_id,
)
from repro.service import AlignmentService, Delta
from repro.service.replica import ReadRouter, ReplicaNode, build_router_server
from repro.service.server import build_server
from repro.service.stream import (
    DeltaBatcher,
    StreamStack,
    WalGapError,
    WriteAheadLog,
    replay_wal,
)
from repro.service.stream.wal import WalRecord

TOLERANCE = 1e-9


def family_delta(start: int, count: int = 1) -> Delta:
    add1, add2 = family_addition(start, count)
    return Delta(add1=tuple(add1), add2=tuple(add2))


def assert_stores_match(first, second, tolerance=TOLERANCE):
    mismatches = list(first.diff(second, tolerance))
    assert not mismatches, mismatches[:5]


def wait_until(condition, seconds=60.0):
    deadline = time.monotonic() + seconds
    while not condition():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.05)


def leg_counts() -> dict:
    """Current observation count of each stage histogram leg (the
    registry is process-global, so tests compare deltas, not totals)."""
    return {leg: DELTA_STAGE_SECONDS.snapshot(stage=leg)[2] for leg in STAGE_LEGS}


def timeline_is_monotone(timeline: dict) -> bool:
    stamped = [timeline[stage] for stage in STAGES if stage in timeline]
    return all(a <= b for a, b in zip(stamped, stamped[1:]))


# ----------------------------------------------------------------------
# trace-context extraction
# ----------------------------------------------------------------------


class TestTraceExtraction:
    def test_sanitize_accepts_printable_ids(self):
        assert sanitize_trace_id("req-42/abc") == "req-42/abc"
        assert sanitize_trace_id("  padded  ") == "padded"

    @pytest.mark.parametrize(
        "bad",
        ["", "   ", "has space", "tab\tid", "ctrl\x01id", "x" * 129, None, 7],
    )
    def test_sanitize_rejects_garbage(self, bad):
        assert sanitize_trace_id(bad) is None

    def test_x_request_id_wins_over_traceparent(self):
        headers = {
            "X-Request-Id": "client-chosen",
            "traceparent": "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01",
        }
        assert extract_trace_id(headers) == ("client-chosen", False)

    def test_traceparent_trace_id_is_extracted(self):
        headers = {"traceparent": "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"}
        assert extract_trace_id(headers) == ("ab" * 16, False)

    def test_all_zero_traceparent_is_rejected(self):
        headers = {"traceparent": "00-" + "0" * 32 + "-" + "cd" * 8 + "-01"}
        trace, generated = extract_trace_id(headers)
        assert generated and trace != "0" * 32

    def test_absent_headers_synthesize(self):
        trace, generated = extract_trace_id({})
        assert generated and len(trace) == 32
        other, _ = extract_trace_id({})
        assert other != trace

    def test_new_trace_ids_are_unique_hex(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 32 and int(i, 16) >= 0 for i in ids)


# ----------------------------------------------------------------------
# the ring
# ----------------------------------------------------------------------


class TestProvenanceRing:
    def test_live_stamps_observe_each_leg_once(self):
        ring = ProvenanceRing()
        before = leg_counts()
        ring.admit("t1", offset=1, ingest_ts=10.0, enqueue_ts=10.5)
        ring.stamp_upto("durable", 1, ts=11.0)
        ring.stamp_applied_upto(1, ts=12.0)
        ring.stamp_upto("notified", 1, ts=12.5)
        after = leg_counts()
        assert after["ingest_to_durable"] == before["ingest_to_durable"] + 1
        assert after["durable_to_applied"] == before["durable_to_applied"] + 1
        assert after["applied_to_notified"] == before["applied_to_notified"] + 1
        payload = ring.lookup_trace("t1")
        assert payload["found"] and payload["offset"] == 1
        assert timeline_is_monotone(payload["timeline"])
        assert set(payload["timeline"]) == {
            "ingest", "enqueue", "durable", "applied", "notified",
        }

    def test_stamp_upto_covers_a_prefix_and_is_idempotent(self):
        ring = ProvenanceRing()
        for offset in (1, 2, 3):
            ring.admit(f"t{offset}", offset=offset, ingest_ts=1.0)
        ring.stamp_upto("durable", 2, ts=2.0)
        assert "durable" in ring.lookup_offset(1)["timeline"]
        assert "durable" in ring.lookup_offset(2)["timeline"]
        assert "durable" not in ring.lookup_offset(3)["timeline"]
        # Re-stamping the same prefix must not move existing stamps.
        ring.stamp_upto("durable", 3, ts=9.0)
        assert ring.lookup_offset(2)["timeline"]["durable"] == 2.0
        assert ring.lookup_offset(3)["timeline"]["durable"] == 9.0

    def test_replayed_entries_never_observe(self):
        ring = ProvenanceRing()
        record = WalRecord(
            offset=5, source="http", seq=None, delta=family_delta(6),
            prov={"trace": "old", "ingest_ts": 1.0, "enqueue_ts": 1.1},
        )
        before = leg_counts()
        ring.register_record(record, live=False)
        ring.stamp_applied_upto(5, ts=3.0)
        ring.stamp_upto("notified", 5, ts=4.0)
        assert leg_counts() == before
        payload = ring.lookup_trace("old")
        assert payload["replayed"] and "applied" in payload["timeline"]

    def test_registered_records_are_durable_already(self):
        """A later fsync of *new* appends must not stamp replayed
        entries with its own (much later) clock."""
        ring = ProvenanceRing()
        record = WalRecord(
            offset=1, source="http", seq=None, delta=family_delta(6),
            prov={"trace": "old", "ingest_ts": 1.0},
        )
        ring.register_record(record, live=False)
        ring.admit("new", offset=2, ingest_ts=100.0)
        ring.stamp_upto("durable", 2, ts=101.0)
        assert "durable" not in ring.lookup_trace("old")["timeline"]
        assert ring.lookup_trace("new")["timeline"]["durable"] == 101.0

    def test_remote_entries_stamp_replica_applied(self):
        ring = ProvenanceRing()
        record = WalRecord(
            offset=7, source="http", seq=None, delta=family_delta(6),
            prov={
                "trace": "shipped", "ingest_ts": 1.0,
                "durable_ts": 1.2, "applied_ts": 1.4,
            },
        )
        before = leg_counts()
        ring.register_record(record, live=True, remote=True)
        ring.stamp_applied_upto(7, ts=2.0)
        after = leg_counts()
        assert after["applied_to_replica"] == before["applied_to_replica"] + 1
        # The local apply routed to replica_applied, not applied...
        timeline = ring.lookup_trace("shipped")["timeline"]
        assert timeline["replica_applied"] == 2.0
        # ...and the shipped primary-side stamps survived.
        assert timeline["applied"] == 1.4 and timeline["durable"] == 1.2

    def test_v1_record_without_prov_still_registers(self):
        ring = ProvenanceRing()
        record = WalRecord(offset=3, source="w", seq=3, delta=family_delta(6))
        ring.register_record(record, live=False)
        payload = ring.lookup_offset(3)
        assert payload["found"] and payload["timeline"] == {}
        assert len(payload["trace"]) == 32  # synthesized

    def test_eviction_is_bounded_and_indexes_stay_consistent(self):
        ring = ProvenanceRing(capacity=2)
        for offset in (1, 2, 3):
            ring.admit(f"t{offset}", offset=offset, ingest_ts=float(offset))
        assert len(ring) == 2
        assert ring.lookup_trace("t1") is None
        assert ring.lookup_offset(1) is None
        assert ring.lookup_trace("t3")["found"]

    def test_note_merge_records_coalesced_traces(self):
        ring = ProvenanceRing()
        ring.admit("a", offset=1)
        ring.admit("b", offset=2)
        ring.note_merge(["a", "b"])
        assert ring.lookup_trace("a")["merged_traces"] == ["a", "b"]
        assert ring.lookup_trace("b")["merged_traces"] == ["a", "b"]
        # A single-delta batch is not a merge.
        ring.admit("c", offset=3)
        ring.note_merge(["c"])
        assert ring.lookup_trace("c")["merged_traces"] == []

    def test_offset_stamps_expose_durable_and_applied(self):
        ring = ProvenanceRing()
        ring.admit("t", offset=4, ingest_ts=1.0)
        assert ring.offset_stamps(4) == {}
        ring.stamp_upto("durable", 4, ts=2.0)
        ring.stamp_applied_upto(4, ts=3.0)
        assert ring.offset_stamps(4) == {"durable_ts": 2.0, "applied_ts": 3.0}
        assert ring.offset_stamps(99) == {}

    def test_freshness_age(self):
        ring = ProvenanceRing()
        assert ring.age("applied") == -1.0
        ring.admit("t", offset=1, ingest_ts=time.time())
        assert 0.0 <= ring.age("ingest") < 60.0


# ----------------------------------------------------------------------
# write path: batcher coalescing keeps every trace
# ----------------------------------------------------------------------


class TestBatcherProvenance:
    def test_traces_survive_coalescing(self, tmp_path):
        left, right = family_pair(6)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        wal = WriteAheadLog(tmp_path / "wal.ndjson")
        wal.provenance = service.provenance
        batcher = DeltaBatcher(service, wal=wal, max_batch=8, max_lag=0.01)
        traces = [f"trace-{i}" for i in range(3)]
        before = leg_counts()
        # Queue three deltas before the flush loop exists, so one warm
        # pass absorbs all of them.
        for index, trace in enumerate(traces):
            batcher.submit(
                family_delta(6 + index), "writer", index + 1, trace=trace
            )
        batcher.start()
        assert batcher.flush(timeout=60.0)
        batcher.close()
        wal.close()
        after = leg_counts()
        assert after["ingest_to_durable"] >= before["ingest_to_durable"] + 3
        assert after["durable_to_applied"] >= before["durable_to_applied"] + 3
        for trace in traces:
            payload = service.provenance.lookup_trace(trace)
            assert payload is not None and payload["found"]
            assert set(traces) <= set(payload["merged_traces"])
            assert timeline_is_monotone(payload["timeline"])
            for stage in ("ingest", "enqueue", "durable", "applied"):
                assert stage in payload["timeline"], (trace, payload)

    def test_wal_less_batcher_still_stamps_applied(self):
        left, right = family_pair(6)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        batcher = DeltaBatcher(service, max_batch=8, max_lag=0.01)
        batcher.start()
        batcher.submit(family_delta(6), "writer", 1, wait=True, trace="no-wal")
        batcher.close()
        payload = service.provenance.lookup_trace("no-wal")
        assert "applied" in payload["timeline"]
        assert payload["offset"] is None


# ----------------------------------------------------------------------
# WAL schema v2: backward compatibility with pre-PR-9 logs
# ----------------------------------------------------------------------


class TestWalSchemaCompat:
    BASE = 6
    DELTAS = 3

    def _v1_fixture(self, tmp_path):
        """A state dir exactly as a pre-PR-9 primary leaves it: a
        snapshot at offset 0 and hand-written v1 WAL records (no ``v``,
        no ``prov`` — the old wire format, byte for byte)."""
        left, right = family_pair(self.BASE)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        state_dir = tmp_path / "state"
        service.snapshot(state_dir)
        deltas = [family_delta(self.BASE + step) for step in range(self.DELTAS)]
        lines = [
            json.dumps(
                {
                    "offset": index + 1,
                    "source": "writer",
                    "seq": index + 1,
                    "delta": delta.to_json(),
                }
            )
            for index, delta in enumerate(deltas)
        ]
        (state_dir / "wal.ndjson").write_text("\n".join(lines) + "\n", "utf-8")
        return state_dir, deltas

    def test_v1_records_round_trip_unchanged(self, tmp_path):
        state_dir, _deltas = self._v1_fixture(tmp_path)
        for line in (state_dir / "wal.ndjson").read_text("utf-8").splitlines():
            raw = json.loads(line)
            assert "v" not in raw and "prov" not in raw
            record = WalRecord.from_json(raw)
            assert record.prov is None
            # Re-encoding a v1 record must not invent v2 keys.
            assert record.to_json() == raw

    def test_v2_records_round_trip_with_prov(self):
        record = WalRecord(
            offset=1, source="http", seq=None, delta=family_delta(6),
            prov={"trace": "t", "ingest_ts": 1.0},
        )
        wire = record.to_json()
        assert wire["v"] == 2 and wire["prov"]["trace"] == "t"
        decoded = WalRecord.from_json(wire)
        assert decoded.prov == {"trace": "t", "ingest_ts": 1.0}
        # The wire prov is a copy: mutating it must not alias the record.
        wire["prov"]["durable_ts"] = 9.9
        assert "durable_ts" not in record.prov

    @pytest.mark.parametrize("bad", [0, -1, "2", 1.5])
    def test_bad_schema_version_is_rejected(self, bad):
        payload = {
            "offset": 1, "source": "s", "delta": family_delta(6).to_json(),
            "v": bad,
        }
        with pytest.raises(ValueError):
            WalRecord.from_json(payload)

    def test_pre_pr9_wal_replays_to_cold_realign_scores(self, tmp_path):
        """Acceptance: a WAL written before provenance existed replays
        exactly as before — the recovered scores equal a cold realign
        of the final graphs within 1e-9, histograms untouched."""
        state_dir, _deltas = self._v1_fixture(tmp_path)
        left, right = family_pair(self.BASE)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        wal = WriteAheadLog(state_dir / "wal.ndjson")
        before = leg_counts()
        assert replay_wal(service, wal, max_batch=2) == self.DELTAS
        wal.close()
        # Replay reconstructs timelines without re-observing histograms.
        assert leg_counts() == before
        assert len(service.provenance) >= self.DELTAS
        assert service.provenance.lookup_offset(1)["replayed"]
        cold = align(
            *family_pair(self.BASE + self.DELTAS),
            ParisConfig(score_stationarity=True),
        )
        assert_stores_match(service.state.store, cold.instances)

    def test_restart_replay_does_not_double_count(self, tmp_path):
        """Live traffic, then a 'restart' (fresh engine + replay of the
        same WAL): the stage histograms advance only for the first
        life of the process."""
        left, right = family_pair(6)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        state_dir = tmp_path / "state"
        service.snapshot(state_dir)
        wal = WriteAheadLog(state_dir / "wal.ndjson")
        wal.provenance = service.provenance
        batcher = DeltaBatcher(service, wal=wal, max_batch=4, max_lag=0.01)
        batcher.start()
        for step in range(2):
            batcher.submit(
                family_delta(6 + step), "w", step + 1,
                wait=True, trace=f"live-{step}",
            )
        batcher.close()
        wal.close()

        left2, right2 = family_pair(6)
        restarted = AlignmentService.cold_start(left2, right2, ParisConfig())
        wal2 = WriteAheadLog(state_dir / "wal.ndjson")
        before = leg_counts()
        assert replay_wal(restarted, wal2) == 2
        wal2.close()
        assert leg_counts() == before
        # The replayed timeline still carries the live run's trace ids.
        payload = restarted.provenance.lookup_trace("live-0")
        assert payload is not None and payload["replayed"]
        assert_stores_match(restarted.state.store, service.state.store)


# ----------------------------------------------------------------------
# replica: shipped records register remotely, ring survives re-bootstrap
# ----------------------------------------------------------------------


class TestReplicaProvenance:
    def make_primary(self, tmp_path, segment_bytes=0):
        left, right = family_pair(6)
        primary = AlignmentService.cold_start(left, right, ParisConfig())
        state_dir = tmp_path / "state"
        primary.snapshot(state_dir)
        wal = WriteAheadLog(state_dir / "wal.ndjson", segment_bytes=segment_bytes)
        wal.provenance = primary.provenance
        return primary, state_dir, wal

    def write_through(self, primary, wal, delta, seq, trace=None):
        """The primary's write path, as the batcher drives it: buffered
        append + ring admit, fsync (stamps durable), then apply."""
        prov = None
        now = time.time()
        if trace is not None:
            prov = {"trace": trace, "ingest_ts": now, "enqueue_ts": now}
        offset = wal.append(delta, "writer", seq, sync=False, prov=prov)
        if trace is not None:
            primary.provenance.admit(
                trace, source="writer", seq=seq, offset=offset,
                ingest_ts=now, enqueue_ts=now,
            )
        wal.sync(offset)
        primary.apply_delta(delta, wal_offset=offset)
        return offset

    def test_replica_applies_stamp_replica_applied(self, tmp_path):
        primary, state_dir, wal = self.make_primary(tmp_path)
        before = leg_counts()
        self.write_through(primary, wal, family_delta(6), 1, trace="shipped-1")
        replica = ReplicaNode(state_dir, batch=8)
        replica.catch_up(1)
        after = leg_counts()
        assert after["applied_to_replica"] >= before["applied_to_replica"] + 1
        payload = replica.provenance.lookup_trace("shipped-1")
        assert payload is not None and payload["found"]
        assert "replica_applied" in payload["timeline"]
        assert "ingest" in payload["timeline"]
        assert not payload["replayed"]
        # The primary's own ring routed the same offset to "applied".
        assert "applied" in primary.provenance.lookup_trace("shipped-1")["timeline"]
        wal.close()

    def test_ring_survives_rebootstrap_after_compaction(self, tmp_path):
        primary, state_dir, wal = self.make_primary(tmp_path, segment_bytes=400)
        self.write_through(primary, wal, family_delta(6), 1, trace="early")
        replica = ReplicaNode(state_dir, batch=2)
        replica.catch_up(1)
        ring = replica.provenance
        assert ring.lookup_trace("early") is not None
        for step in range(1, 4):
            self.write_through(
                primary, wal, family_delta(6 + step), step + 1,
                trace=f"later-{step}",
            )
        primary.snapshot(state_dir)
        reclaimed, _deleted = wal.compact(primary.state.wal_offset)
        assert reclaimed > 0
        with pytest.raises(WalGapError):
            replica.poll_once()
        replica.start()
        try:
            wait_until(lambda: replica.applied_offset == 4)
        finally:
            replica.stop()
        assert replica.rebootstraps == 1
        # The re-bootstrap swapped engines but kept the node's ring —
        # both the pre-compaction history and its identity survive.
        assert replica.provenance is ring
        assert replica.service.provenance is ring
        assert ring.lookup_trace("early") is not None
        wal.close()


# ----------------------------------------------------------------------
# HTTP surface: request-id echo, GET /provenance, router relay
# ----------------------------------------------------------------------


def url_of(server, path=""):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def request_raw(url, payload=None, headers=None, timeout=60):
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(url, data=data, headers=headers or {})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8")), response.headers


def serve(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


class TestHttpProvenance:
    @pytest.fixture()
    def fleet(self, tmp_path):
        """Primary (stream + WAL) + one replica server + router."""
        left, right = family_pair(6)
        primary = AlignmentService.cold_start(left, right, ParisConfig())
        state_dir = tmp_path / "state"
        primary.snapshot(state_dir)
        wal = WriteAheadLog(state_dir / "wal.ndjson")
        batcher = DeltaBatcher(primary, wal=wal, max_batch=8, max_lag=0.02)
        stream = StreamStack(batcher=batcher, wal=wal).start()
        primary_server = build_server(
            primary, "127.0.0.1", 0, state_dir=state_dir,
            stream=stream, snapshot_every=0,
        )
        replica = ReplicaNode(state_dir, batch=8).start()
        replica_server = build_server(None, "127.0.0.1", 0, replica=replica)
        router = ReadRouter(
            url_of(primary_server), [url_of(replica_server)],
            check_interval=0.2, stats_ttl=0.05, retry_after=0.5,
        )
        router_server = build_router_server(router)
        threads = [serve(s) for s in (primary_server, replica_server, router_server)]
        router.start()
        yield {
            "primary": primary,
            "primary_server": primary_server,
            "replica": replica,
            "replica_server": replica_server,
            "router_server": router_server,
        }
        router_server.shutdown()
        router_server.server_close()
        router.stop()
        replica_server.shutdown()
        replica_server.server_close()
        replica.stop()
        primary_server.shutdown()
        primary_server.server_close()
        stream.stop()
        for thread in threads:
            thread.join(timeout=10)

    def test_request_id_is_echoed_on_every_role(self, fleet):
        for key in ("primary_server", "replica_server", "router_server"):
            _payload, headers = request_raw(
                url_of(fleet[key], "/healthz"),
                headers={"X-Request-Id": f"probe-{key}"},
            )
            assert headers["X-Request-Id"] == f"probe-{key}", key
            # Exactly once — the router must not stack the backend's
            # echo on top of its own.
            assert headers.get_all("X-Request-Id") == [f"probe-{key}"], key

    def test_request_id_is_generated_when_absent(self, fleet):
        _payload, headers = request_raw(url_of(fleet["primary_server"], "/healthz"))
        generated = headers["X-Request-Id"]
        assert generated and len(generated) == 32

    def test_traceparent_is_honored(self, fleet):
        trace = "ef" * 16
        _payload, headers = request_raw(
            url_of(fleet["primary_server"], "/healthz"),
            headers={"traceparent": f"00-{trace}-{'12' * 8}-01"},
        )
        assert headers["X-Request-Id"] == trace

    def test_posted_delta_is_traceable_end_to_end(self, fleet):
        trace = "e2e-delta-1"
        report, headers = request_raw(
            url_of(fleet["primary_server"], "/delta"),
            payload=family_delta(6).to_json(),
            headers={
                "Content-Type": "application/json",
                "X-Request-Id": trace,
            },
        )
        assert headers["X-Request-Id"] == trace
        payload, _ = request_raw(
            url_of(fleet["primary_server"], f"/provenance?trace={trace}")
        )
        assert payload["found"] and payload["role"] == "primary"
        for stage in ("ingest", "enqueue", "durable", "applied"):
            assert stage in payload["timeline"], payload
        assert timeline_is_monotone(payload["timeline"])
        # The same record, by offset.
        by_offset, _ = request_raw(
            url_of(fleet["primary_server"], f"/provenance?offset={payload['offset']}")
        )
        assert by_offset["trace"] == trace
        # The replica converges and serves its own view of the trace.
        wait_until(
            lambda: fleet["replica"].applied_offset >= payload["offset"], 60
        )
        replica_view, _ = request_raw(
            url_of(fleet["replica_server"], f"/provenance?trace={trace}")
        )
        assert replica_view["found"] and replica_view["role"] == "replica"
        assert "replica_applied" in replica_view["timeline"]
        assert "ingest" in replica_view["timeline"]

    def test_router_forwards_the_request_id_to_the_primary(self, fleet):
        trace = "via-router-7"
        _report, headers = request_raw(
            url_of(fleet["router_server"], "/delta"),
            payload=family_delta(7).to_json(),
            headers={
                "Content-Type": "application/json",
                "X-Request-Id": trace,
            },
        )
        assert headers.get_all("X-Request-Id") == [trace]
        payload, _ = request_raw(
            url_of(fleet["primary_server"], f"/provenance?trace={trace}")
        )
        assert payload["found"], payload

    def test_provenance_endpoint_errors(self, fleet):
        base = url_of(fleet["primary_server"])
        for bad in ("/provenance", "/provenance?trace=a&offset=1",
                    "/provenance?offset=xyz"):
            with pytest.raises(urllib.error.HTTPError) as error:
                request_raw(base + bad)
            assert error.value.code == 400, bad
        with pytest.raises(urllib.error.HTTPError) as error:
            request_raw(base + "/provenance?trace=never-seen")
        assert error.value.code == 404
        assert json.load(error.value)["found"] is False

    def test_stage_histograms_are_served_on_metrics(self, fleet):
        request_raw(
            url_of(fleet["primary_server"], "/delta"),
            payload=family_delta(8).to_json(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(
            url_of(fleet["primary_server"], "/metrics"), timeout=30
        ) as response:
            body = response.read().decode("utf-8")
        assert 'repro_delta_stage_seconds_count{stage="ingest_to_durable"}' in body
        assert 'repro_freshness_seconds{stage="applied"}' in body

    def test_trace_cli_merges_the_fleet_timeline(self, fleet, capsys):
        trace = "cli-trace-9"
        request_raw(
            url_of(fleet["primary_server"], "/delta"),
            payload=family_delta(9).to_json(),
            headers={
                "Content-Type": "application/json",
                "X-Request-Id": trace,
            },
        )
        offset = fleet["primary"].state.wal_offset
        wait_until(lambda: fleet["replica"].applied_offset >= offset, 60)
        args = argparse.Namespace(
            url=url_of(fleet["primary_server"]),
            trace_id=trace,
            replicas=[url_of(fleet["replica_server"])],
            timeout=30.0,
            json=True,
        )
        assert cmd_trace(args) == 0
        merged = json.loads(capsys.readouterr().out)
        stages = [row["stage"] for row in merged["timeline"]]
        assert stages.index("ingest") < stages.index("applied")
        assert "replica_applied" in stages
        timestamps = [row["ts"] for row in merged["timeline"]]
        assert timestamps == sorted(timestamps)
        roles = {row["stage"]: row["role"] for row in merged["timeline"]}
        assert roles["applied"] == "primary"
        assert roles["replica_applied"] == "replica"
        # Human-readable mode prints one line per stage.
        args.json = False
        assert cmd_trace(args) == 0
        text = capsys.readouterr().out
        assert trace in text and "replica_applied" in text


# ----------------------------------------------------------------------
# the trace CLI, off-line pieces
# ----------------------------------------------------------------------


class TestTraceCli:
    def test_merge_prefers_the_primarys_own_stamps(self):
        nodes = [
            {
                "url": "http://replica",
                "payload": {
                    "found": True, "role": "replica",
                    "timeline": {
                        "ingest": 1.0, "applied": 3.5,
                        "replica_applied": 4.0, "notified": 5.0,
                    },
                },
            },
            {
                "url": "http://primary",
                "payload": {
                    "found": True, "role": "primary",
                    "timeline": {"ingest": 1.0, "applied": 3.0, "notified": 3.2},
                },
            },
        ]
        rows = _merge_timelines(nodes)
        by_stage = {}
        for row in rows:
            by_stage.setdefault(row["stage"], []).append(row)
        # Shared (primary-origin) stages appear once, from the primary.
        assert len(by_stage["ingest"]) == 1
        assert by_stage["applied"][0]["role"] == "primary"
        assert by_stage["applied"][0]["ts"] == 3.0
        # Per-node stages keep one row per reporting node.
        assert len(by_stage["notified"]) == 2
        assert len(by_stage["replica_applied"]) == 1
        assert [r["ts"] for r in rows] == sorted(r["ts"] for r in rows)

    def test_unreachable_fleet_returns_one(self, capsys):
        args = argparse.Namespace(
            url="http://127.0.0.1:1", trace_id="nope",
            replicas=["http://127.0.0.1:1"], timeout=0.2, json=False,
        )
        assert cmd_trace(args) == 1
        assert "not found" in capsys.readouterr().out

    def test_parser_wires_the_trace_command(self):
        args = build_parser().parse_args(
            ["trace", "http://p:1", "abc",
             "--replicas", "http://r:2", "--replicas", "http://r:3",
             "--timeout", "5", "--json"]
        )
        assert args.handler is cmd_trace
        assert args.url == "http://p:1" and args.trace_id == "abc"
        assert args.replicas == ["http://r:2", "http://r:3"]
        assert args.timeout == 5.0 and args.json is True


# ----------------------------------------------------------------------
# stats --watch reconnect backoff
# ----------------------------------------------------------------------


class TestStatsWatchBackoff:
    def test_transient_failures_back_off_then_recover(self):
        calls = []
        sleeps = []
        outcomes = [
            urllib.error.URLError("refused"),
            urllib.error.URLError("refused"),
            None,  # healthy fetch
            KeyboardInterrupt(),  # the user's ^C ends the loop
        ]

        def fetch(base_url, raw):
            calls.append(base_url)
            outcome = outcomes[len(calls) - 1]
            if outcome is not None:
                raise outcome

        with pytest.raises(KeyboardInterrupt):
            _watch_service_stats(
                "http://x", False, 2.0, fetch=fetch, sleep=sleeps.append
            )
        assert len(calls) == 4
        # Exponential backoff for the failures, the configured interval
        # after the healthy fetch, reset backoff for the next failure.
        assert sleeps == [0.5, 1.0, 2.0]

    def test_backoff_is_capped(self):
        sleeps = []
        attempts = []

        def fetch(base_url, raw):
            attempts.append(1)
            if len(attempts) > 6:
                raise KeyboardInterrupt()
            raise OSError("down")

        with pytest.raises(KeyboardInterrupt):
            _watch_service_stats(
                "http://x", False, 1.0,
                fetch=fetch, sleep=sleeps.append, max_retry=2.0,
            )
        assert sleeps == [0.5, 1.0, 2.0, 2.0, 2.0, 2.0]
