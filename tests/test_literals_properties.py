"""Property-based tests for the literal-similarity laws.

Every similarity measure must be symmetric, reflexive and bounded
(see :class:`repro.literals.base.LiteralSimilarity`), and its blocking
keys must be *complete*: any pair with positive similarity must share
at least one key, otherwise the aligner's candidate generation would
silently miss matches.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.literals import (
    CompositeSimilarity,
    DateSimilarity,
    EditDistanceSimilarity,
    IdentitySimilarity,
    NormalizedIdentitySimilarity,
    NumericSimilarity,
    deletion_neighbourhood,
    levenshtein,
)
from repro.rdf.terms import Literal

MEASURES = [
    IdentitySimilarity(),
    NormalizedIdentitySimilarity(),
    EditDistanceSimilarity(max_distance=1),
    EditDistanceSimilarity(max_distance=2),
    NumericSimilarity(tolerance=0.05),
    DateSimilarity(),
    CompositeSimilarity(),
]

# Text with realistic benchmark content: words, digits, punctuation.
texts = st.text(
    alphabet=st.sampled_from("abcXYZ0123456789 -/.,"), min_size=1, max_size=12
)


@pytest.mark.parametrize("measure", MEASURES, ids=lambda m: m.name)
@given(value=texts)
@settings(max_examples=60, deadline=None)
def test_reflexive(measure, value):
    assert measure(Literal(value), Literal(value)) == 1.0


@pytest.mark.parametrize("measure", MEASURES, ids=lambda m: m.name)
@given(left=texts, right=texts)
@settings(max_examples=60, deadline=None)
def test_symmetric(measure, left, right):
    assert measure(Literal(left), Literal(right)) == pytest.approx(
        measure(Literal(right), Literal(left))
    )


@pytest.mark.parametrize("measure", MEASURES, ids=lambda m: m.name)
@given(left=texts, right=texts)
@settings(max_examples=60, deadline=None)
def test_bounded(measure, left, right):
    value = measure(Literal(left), Literal(right))
    assert 0.0 <= value <= 1.0


@pytest.mark.parametrize("measure", MEASURES, ids=lambda m: m.name)
@given(left=texts, right=texts)
@settings(max_examples=60, deadline=None)
def test_blocking_keys_complete(measure, left, right):
    """sim > 0 implies a shared blocking key (candidate completeness)."""
    left_literal, right_literal = Literal(left), Literal(right)
    if measure(left_literal, right_literal) > 0.0:
        left_keys = set(measure.keys(left_literal))
        right_keys = set(measure.keys(right_literal))
        assert left_keys & right_keys


short_texts = st.text(alphabet=st.sampled_from("abcd"), max_size=7)


@given(left=short_texts, right=short_texts)
@settings(max_examples=100, deadline=None)
def test_levenshtein_matches_reference(left, right):
    """Optimized Levenshtein agrees with a simple reference DP."""

    def reference(a: str, b: str) -> int:
        rows = [[0] * (len(b) + 1) for _ in range(len(a) + 1)]
        for i in range(len(a) + 1):
            rows[i][0] = i
        for j in range(len(b) + 1):
            rows[0][j] = j
        for i in range(1, len(a) + 1):
            for j in range(1, len(b) + 1):
                rows[i][j] = min(
                    rows[i - 1][j] + 1,
                    rows[i][j - 1] + 1,
                    rows[i - 1][j - 1] + (a[i - 1] != b[j - 1]),
                )
        return rows[len(a)][len(b)]

    assert levenshtein(left, right) == reference(left, right)


@given(left=short_texts, right=short_texts)
@settings(max_examples=100, deadline=None)
def test_levenshtein_triangle_inequality(left, right):
    """d(a,b) <= d(a,c) + d(c,b) for the empty-string midpoint."""
    assert levenshtein(left, right) <= len(left) + len(right)


@given(value=short_texts, depth=st.integers(min_value=0, max_value=2))
@settings(max_examples=100, deadline=None)
def test_deletion_neighbourhood_contains_original(value, depth):
    neighbourhood = deletion_neighbourhood(value, depth)
    assert value in neighbourhood
    assert all(len(variant) >= len(value) - depth for variant in neighbourhood)


@given(left=short_texts, right=short_texts)
@settings(max_examples=100, deadline=None)
def test_deletion_blocking_is_exact_for_distance_one(left, right):
    """Strings within Levenshtein distance 1 share a deletion variant."""
    if levenshtein(left, right) <= 1:
        assert deletion_neighbourhood(left, 1) & deletion_neighbourhood(right, 1)
