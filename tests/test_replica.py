"""Multi-replica serving: followers, replica nodes, router, endpoints.

Covers the replication subsystem bottom-up: the WAL followers (file
tail and HTTP log shipping), the replica node (bootstrap, tailing,
crash resume, re-bootstrap after compaction), the read router (fan-out,
write forwarding, bounded staleness, ejection) and the primary's
``GET /wal`` / ``GET /snapshot/latest`` endpoints — plus the headline
guarantee: a replica at WAL offset K scores equal (1e-9) to the
primary at offset K and to a cold realign of the same graphs, for
random delta streams, across crash resume and compaction.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aligner import align
from repro.core.config import ParisConfig
from repro.datasets.incremental import family_addition, family_pair, family_removal
from repro.service import AlignmentService, Delta, load_state
from repro.service.replica import (
    FileWalFollower,
    HttpWalFollower,
    ReadRouter,
    ReplicaNode,
    build_router_server,
    make_follower,
)
from repro.service.server import build_server
from repro.service.state import load_state_bytes
from repro.service.stream import (
    DeltaBatcher,
    StreamStack,
    WalGapError,
    WriteAheadLog,
)

TOLERANCE = 1e-9


def family_delta(start: int, count: int = 1) -> Delta:
    add1, add2 = family_addition(start, count)
    return Delta(add1=tuple(add1), add2=tuple(add2))


def assert_stores_match(first, second, tolerance=TOLERANCE):
    mismatches = list(first.diff(second, tolerance))
    assert not mismatches, mismatches[:5]
    for left, right, probability in second.items():
        assert first.equals_of_right(right)[left] == pytest.approx(
            probability, abs=tolerance
        )


def wait_until(condition, seconds=60.0):
    deadline = time.monotonic() + seconds
    while not condition():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.05)


def make_primary(tmp_path, base=6, segment_bytes=0):
    """A snapshotted primary + WAL, the fixture every replica needs."""
    left, right = family_pair(base)
    primary = AlignmentService.cold_start(left, right, ParisConfig())
    state_dir = tmp_path / "state"
    primary.snapshot(state_dir)
    wal = WriteAheadLog(state_dir / "wal.ndjson", segment_bytes=segment_bytes)
    return primary, state_dir, wal


def write_through(primary, wal, delta, seq):
    """The primary's write path: durable WAL append, then apply."""
    offset = wal.append(delta, "writer", seq)
    primary.apply_delta(delta, wal_offset=offset)
    return offset


# ----------------------------------------------------------------------
# followers
# ----------------------------------------------------------------------


class TestFollowers:
    def test_file_follower_tails_and_reports_head(self, tmp_path):
        primary, state_dir, wal = make_primary(tmp_path)
        for step in range(3):
            write_through(primary, wal, family_delta(6 + step), step + 1)
        follower = FileWalFollower(state_dir / "wal.ndjson")
        fetch = follower.fetch(0, limit=2)
        assert [record.offset for record in fetch.records] == [1, 2]
        # A full-limit (backlogged) fetch must report the log's true
        # head, not its own last record — the replica's lag accounting
        # (and the router's ?max_lag_ms= contract) depend on it.
        assert fetch.source_offset == 3
        fetch = follower.fetch(2, limit=10)
        assert [record.offset for record in fetch.records] == [3]
        assert fetch.source_offset == 3
        assert follower.fetch(3, limit=10) == ([], 3)
        wal.close()

    def test_file_follower_never_reads_past_the_durable_marker(self, tmp_path):
        """A group-committing primary's buffered appends reach the
        shared file before their fsync; the follower must cap at the
        published durable marker or a primary crash could leave a
        replica ahead of the log it converges to."""
        primary, state_dir, wal = make_primary(tmp_path)
        write_through(primary, wal, family_delta(6), 1)  # fsync'd, marker at 1
        offset = wal.append(family_delta(7), "w", 2, sync=False)
        wal._stream.flush()  # the line is in the file, the fsync is not
        follower = FileWalFollower(state_dir / "wal.ndjson")
        fetch = follower.fetch(0, limit=10)
        assert [record.offset for record in fetch.records] == [1]
        assert fetch.source_offset == 1  # undurable tail is invisible
        wal.sync(offset)
        fetch = follower.fetch(1, limit=10)
        assert [record.offset for record in fetch.records] == [2]
        assert fetch.source_offset == 2
        wal.close()

    def test_replica_source_may_name_the_wal_file(self, tmp_path):
        """Every source form make_follower accepts must also
        bootstrap: a WAL-file path finds the snapshots next to it."""
        primary, state_dir, wal = make_primary(tmp_path)
        write_through(primary, wal, family_delta(6), 1)
        replica = ReplicaNode(state_dir / "wal.ndjson")
        replica.catch_up(1)
        assert_stores_match(replica.service.state.store, primary.state.store)
        wal.close()

    def test_make_follower_dispatch(self, tmp_path):
        assert isinstance(make_follower("http://127.0.0.1:1/x"), HttpWalFollower)
        follower = make_follower(tmp_path)  # a directory → its wal.ndjson
        assert isinstance(follower, FileWalFollower)
        assert follower.path == tmp_path / "wal.ndjson"
        assert isinstance(make_follower(tmp_path / "wal.ndjson"), FileWalFollower)

    def test_file_follower_sees_rotation_and_compaction(self, tmp_path):
        primary, state_dir, wal = make_primary(tmp_path, segment_bytes=512)
        follower = FileWalFollower(state_dir / "wal.ndjson")
        for step in range(4):
            write_through(primary, wal, family_delta(6 + step), step + 1)
        assert len(wal.sealed_segments()) >= 1
        fetch = follower.fetch(0, limit=100)
        assert [record.offset for record in fetch.records] == [1, 2, 3, 4]
        # Compact everything a snapshot covers; a fresh suffix fetch
        # works, an out-of-retention fetch raises the gap error.
        primary.snapshot(state_dir)
        wal.compact(primary.state.wal_offset)
        assert follower.fetch(4, limit=10).records == []
        with pytest.raises(WalGapError):
            follower.fetch(0, limit=10)
        wal.close()


# ----------------------------------------------------------------------
# the headline guarantee
# ----------------------------------------------------------------------


class TestReplicaEquivalence:
    """For random delta streams, a replica that bootstrapped from the
    primary's snapshot and tailed its WAL scores equal (1e-9) to the
    primary — at an intermediate offset K and at the head — and the
    head state equals a cold realign of the final graphs.  Both store
    directions are asserted (``assert_stores_match`` checks the 1→2
    diff and every 2→1 row)."""

    BASE = 5

    @staticmethod
    def _delta_stream(seed: int, num_ops: int) -> list:
        import random

        rng = random.Random(seed)
        deltas = []
        next_new = TestReplicaEquivalence.BASE
        for _ in range(num_ops):
            kind = rng.choice(("add_family", "remove_marriage", "readd_marriage"))
            if kind == "add_family":
                add1, add2 = family_addition(next_new, 1)
                deltas.append(Delta(add1=tuple(add1), add2=tuple(add2)))
                next_new += 1
            else:
                index = rng.randrange(0, TestReplicaEquivalence.BASE)
                rem1, rem2 = family_removal([index])
                if kind == "remove_marriage":
                    deltas.append(Delta(remove1=tuple(rem1), remove2=tuple(rem2)))
                else:
                    deltas.append(Delta(add1=tuple(rem1), add2=tuple(rem2)))
        return deltas

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_ops=st.integers(min_value=2, max_value=6),
        replica_batch=st.integers(min_value=1, max_value=4),
    )
    def test_replica_equals_primary_at_equal_offset(
        self, tmp_path_factory, seed, num_ops, replica_batch
    ):
        tmp_path = tmp_path_factory.mktemp("replica-prop")
        deltas = self._delta_stream(seed, num_ops)
        primary, state_dir, wal = make_primary(
            tmp_path, base=self.BASE, segment_bytes=700
        )
        # A mid-stream reference: a twin primary stopped at offset K.
        mid = (num_ops + 1) // 2
        left, right = family_pair(self.BASE)
        twin = AlignmentService.cold_start(left, right, ParisConfig())
        for sequence, delta in enumerate(deltas, start=1):
            write_through(primary, wal, delta, sequence)
            if sequence <= mid:
                twin.apply_delta(delta)
        replica = ReplicaNode(state_dir, batch=replica_batch)
        # ...equal at offset K (the replica pauses there)...
        while replica.applied_offset < mid:
            replica.poll_once()
            if replica.applied_offset >= mid:
                break
        # batch sizing may overshoot mid; only compare when it landed
        # exactly (coarse batches are compared at the head below).
        if replica.applied_offset == mid:
            assert_stores_match(replica.service.state.store, twin.state.store)
        # ...and equal at the head, where the cold realign also holds.
        replica.catch_up(len(deltas))
        assert replica.applied_offset == primary.state.wal_offset
        assert_stores_match(replica.service.state.store, primary.state.store)
        cold = align(
            primary.state.ontology1,
            primary.state.ontology2,
            ParisConfig(score_stationarity=True),
        )
        assert_stores_match(replica.service.state.store, cold.instances)
        wal.close()


# ----------------------------------------------------------------------
# failure modes
# ----------------------------------------------------------------------


class TestReplicaFailureModes:
    def test_crash_resume_from_own_snapshot_plus_wal_suffix(self, tmp_path):
        """A replica killed mid-apply restarts from its *own* snapshot
        and replays only the WAL suffix beyond it."""
        primary, state_dir, wal = make_primary(tmp_path)
        for step in range(3):
            write_through(primary, wal, family_delta(6 + step), step + 1)
        own_dir = tmp_path / "replica-state"
        replica = ReplicaNode(state_dir, state_dir=own_dir, batch=1, snapshot_every=1)
        replica.poll_once()  # applies record 1, snapshots its own state
        assert replica.applied_offset == 1
        assert load_state(own_dir).wal_offset == 1
        del replica  # the "kill": nothing beyond the snapshot survives

        resumed = ReplicaNode(state_dir, state_dir=own_dir, batch=1, snapshot_every=1)
        # Bootstrapped from its own snapshot (offset 1), not the
        # primary's (offset 0) — the suffix is 2 records, not 3.
        assert resumed.bootstrapped_at_offset == 1
        resumed.catch_up(3)
        assert_stores_match(resumed.service.state.store, primary.state.store)
        wal.close()

    def test_wal_gap_triggers_rebootstrap(self, tmp_path):
        """A replica that fell behind compaction re-bootstraps from the
        primary's covering snapshot and converges anyway."""
        primary, state_dir, wal = make_primary(tmp_path, segment_bytes=400)
        for step in range(4):
            write_through(primary, wal, family_delta(6 + step), step + 1)
        # The lagging replica bootstrapped at offset 0...
        replica = ReplicaNode(state_dir, batch=2)
        assert replica.applied_offset == 0
        # ...and the primary snapshots + compacts past it.
        primary.snapshot(state_dir)
        reclaimed, _deleted = wal.compact(primary.state.wal_offset)
        assert reclaimed > 0
        with pytest.raises(WalGapError):
            replica.poll_once()
        replica.start()
        try:
            wait_until(lambda: replica.applied_offset == 4)
        finally:
            replica.stop()
        assert replica.rebootstraps == 1
        assert replica.last_error is None
        assert_stores_match(replica.service.state.store, primary.state.store)
        wal.close()

    def test_fresh_bootstrap_after_compaction(self, tmp_path):
        """Acceptance: after compaction shrinks the log, a *fresh*
        replica (snapshot + remaining segments) reaches the primary."""
        primary, state_dir, wal = make_primary(tmp_path, segment_bytes=400)
        for step in range(3):
            write_through(primary, wal, family_delta(6 + step), step + 1)
        primary.snapshot(state_dir)  # covers offset 3
        write_through(primary, wal, family_delta(9), 4)  # suffix beyond it
        before = wal.size_bytes()
        reclaimed, _deleted = wal.compact(3)
        assert reclaimed > 0 and wal.size_bytes() < before
        replica = ReplicaNode(state_dir)
        assert replica.bootstrapped_at_offset == 3
        replica.catch_up(4)
        assert_stores_match(replica.service.state.store, primary.state.store)
        wal.close()


# ----------------------------------------------------------------------
# HTTP surface: primary endpoints, replica server, router
# ----------------------------------------------------------------------


def url_of(server, path=""):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def get_json(server, path):
    with urllib.request.urlopen(url_of(server, path), timeout=30) as response:
        return json.load(response), response.headers


def post_json(server, path, payload):
    request = urllib.request.Request(
        url_of(server, path),
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.load(response)


def serve(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


class TestPrimaryReplicationEndpoints:
    @pytest.fixture()
    def stack(self, tmp_path):
        primary, state_dir, wal = make_primary(tmp_path, segment_bytes=600)
        batcher = DeltaBatcher(primary, wal=wal, max_batch=8, max_lag=0.02)
        stream = StreamStack(batcher=batcher, wal=wal).start()
        server = build_server(
            primary, "127.0.0.1", 0, state_dir=state_dir,
            stream=stream, snapshot_every=0,
        )
        thread = serve(server)
        yield server, primary, state_dir, wal
        server.shutdown()
        server.server_close()
        stream.stop()
        thread.join(timeout=10)

    def test_get_wal_ships_ndjson_records(self, stack):
        server, primary, _state_dir, wal = stack
        for step in range(3):
            post_json(server, "/delta", family_delta(6 + step).to_json())
        with urllib.request.urlopen(url_of(server, "/wal?from=1"), timeout=30) as resp:
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            assert int(resp.headers["X-Wal-Offset"]) == 3
            lines = resp.read().decode("utf-8").splitlines()
        offsets = [json.loads(line)["offset"] for line in lines]
        assert offsets == [2, 3]
        # limit caps the page; the header still advertises the head.
        with urllib.request.urlopen(
            url_of(server, "/wal?from=0&limit=1"), timeout=30
        ) as resp:
            assert int(resp.headers["X-Wal-Offset"]) == 3
            assert len(resp.read().decode("utf-8").splitlines()) == 1

    def test_get_wal_410_after_compaction(self, stack):
        server, primary, state_dir, wal = stack
        for step in range(4):
            post_json(server, "/delta", family_delta(6 + step).to_json())
        compacted = post_json(server, "/snapshot", {})
        assert compacted["wal_bytes_compacted"] > 0
        with pytest.raises(urllib.error.HTTPError) as error:
            get_json(server, "/wal?from=0")
        assert error.value.code == 410
        detail = json.load(error.value)
        assert detail["oldest"] > 1

    def test_get_snapshot_latest_bootstraps_a_state(self, stack):
        server, primary, _state_dir, _wal = stack
        post_json(server, "/delta", family_delta(6).to_json())
        post_json(server, "/snapshot", {})
        with urllib.request.urlopen(
            url_of(server, "/snapshot/latest"), timeout=30
        ) as resp:
            assert resp.headers["X-State-Version"] == "1"
            data = resp.read()
        state = load_state_bytes(data)
        assert state.version == 1 and state.wal_offset == 1
        assert_stores_match(state.store, primary.state.store)

    def test_http_replica_end_to_end(self, stack):
        server, primary, _state_dir, _wal = stack
        for step in range(3):
            post_json(server, "/delta", family_delta(6 + step).to_json())
        post_json(server, "/snapshot", {})
        replica = ReplicaNode(url_of(server), batch=2)
        post_json(server, "/delta", family_delta(9).to_json())  # beyond bootstrap
        replica.catch_up(4)
        assert_stores_match(replica.service.state.store, primary.state.store)

    def test_get_wal_404_without_wal(self, tmp_path):
        left, right = family_pair(3)
        service = AlignmentService.cold_start(left, right, ParisConfig())
        server = build_server(service, "127.0.0.1", 0)
        thread = serve(server)
        try:
            with pytest.raises(urllib.error.HTTPError) as error:
                get_json(server, "/wal?from=0")
            assert error.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as error:
                get_json(server, "/snapshot/latest")
            assert error.value.code == 404
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


class TestReplicaServer:
    def test_read_only_surface_and_stats(self, tmp_path):
        primary, state_dir, wal = make_primary(tmp_path)
        write_through(primary, wal, family_delta(6), 1)
        replica = ReplicaNode(state_dir, batch=8)
        replica.catch_up(1)
        server = build_server(None, "127.0.0.1", 0, replica=replica)
        thread = serve(server)
        try:
            health, _headers = get_json(server, "/healthz")
            assert health["role"] == "replica" and health["status"] == "ok"
            stats, _headers = get_json(server, "/stats")
            assert stats["role"] == "replica"
            assert stats["wal_offset"] == 1
            assert stats["replication"]["applied_offset"] == 1
            assert stats["replication"]["behind"] == 0
            assert stats["ingest"]["queue_depth"] == 0
            pair, _headers = get_json(server, "/pair/p6a/q6a")
            assert pair["probability"] > 0.9
            with pytest.raises(urllib.error.HTTPError) as error:
                post_json(server, "/delta", family_delta(7).to_json())
            assert error.value.code == 403
            assert "primary" in json.load(error.value)["error"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            wal.close()


class TestReadRouter:
    @pytest.fixture()
    def cluster(self, tmp_path):
        """Primary (with stream+WAL) + two replica servers + router."""
        primary, state_dir, wal = make_primary(tmp_path)
        batcher = DeltaBatcher(primary, wal=wal, max_batch=8, max_lag=0.02)
        stream = StreamStack(batcher=batcher, wal=wal).start()
        primary_server = build_server(
            primary, "127.0.0.1", 0, state_dir=state_dir,
            stream=stream, snapshot_every=0,
        )
        replicas = [ReplicaNode(state_dir, batch=8) for _ in range(2)]
        replica_servers = [
            build_server(None, "127.0.0.1", 0, replica=replica)
            for replica in replicas
        ]
        router = ReadRouter(
            url_of(primary_server),
            [url_of(server) for server in replica_servers],
            check_interval=0.2,
            stats_ttl=0.05,
            retry_after=0.5,
        )
        router_server = build_router_server(router)
        threads = [serve(s) for s in (primary_server, *replica_servers, router_server)]
        router.start()
        yield {
            "primary": primary,
            "primary_server": primary_server,
            "replicas": replicas,
            "replica_servers": replica_servers,
            "router": router,
            "router_server": router_server,
        }
        router_server.shutdown()
        router_server.server_close()
        router.stop()
        for server in replica_servers:
            try:
                server.shutdown()
                server.server_close()
            except OSError:  # pragma: no cover - already closed by the test
                pass
        for replica in replicas:
            replica.stop()
        primary_server.shutdown()
        primary_server.server_close()
        stream.stop()
        for thread in threads:
            thread.join(timeout=10)

    def test_reads_fan_out_and_writes_forward(self, cluster):
        router_server = cluster["router_server"]
        report = post_json(router_server, "/delta", family_delta(6).to_json())
        assert report["converged"]
        assert cluster["primary"].state.wal_offset == 1
        for replica in cluster["replicas"]:
            replica.catch_up(1)
        served_by = set()
        for _ in range(6):
            pair, headers = get_json(router_server, "/pair/p6a/q6a")
            assert pair["probability"] > 0.9
            served_by.add(headers["X-Served-By"])
        # Round-robin across both replicas; the primary served nothing.
        assert served_by == {url_of(s) for s in cluster["replica_servers"]}
        stats, _headers = get_json(router_server, "/stats")
        assert stats["reads_routed"] == 6
        assert stats["writes_forwarded"] == 1
        assert all(entry["served"] > 0 for entry in stats["replicas"])

    def test_min_offset_rejects_stale_replicas(self, cluster):
        router_server = cluster["router_server"]
        post_json(router_server, "/delta", family_delta(6).to_json())
        fresh, stale = cluster["replicas"]
        fresh.catch_up(1)  # `stale` stays at offset 0
        cluster["router"].probe_all()
        for _ in range(4):
            pair, headers = get_json(router_server, "/pair/p6a/q6a?min_offset=1")
            assert pair["probability"] > 0.9
            # Only the caught-up replica may answer.
            assert headers["X-Served-By"] == url_of(cluster["replica_servers"][0])
        # An offset nobody reached: honest 503 + Retry-After, never the
        # primary (constrained reads do not fall back).
        with pytest.raises(urllib.error.HTTPError) as error:
            get_json(router_server, "/pair/p6a/q6a?min_offset=99")
        assert error.value.code == 503
        assert float(error.value.headers["Retry-After"]) > 0
        stats, _headers = get_json(router_server, "/stats")
        assert stats["rejected_stale"] >= 1

    def test_max_lag_ms_bounded_staleness(self, cluster):
        router_server = cluster["router_server"]
        post_json(router_server, "/delta", family_delta(6).to_json())
        for replica in cluster["replicas"]:
            replica.catch_up(1)
            replica.start()  # live tailing keeps lag near the poll interval
        try:
            cluster["router"].probe_all()
            pair, _headers = get_json(
                router_server, "/pair/p6a/q6a?max_lag_ms=30000"
            )
            assert pair["probability"] > 0.9
            # A bound nothing can meet (probe age alone exceeds it).
            with pytest.raises(urllib.error.HTTPError) as error:
                get_json(router_server, "/pair/p6a/q6a?max_lag_ms=0")
            assert error.value.code == 503
        finally:
            for replica in cluster["replicas"]:
                replica.stop()

    def test_dead_replica_is_ejected_and_routed_around(self, cluster):
        router_server = cluster["router_server"]
        post_json(router_server, "/delta", family_delta(6).to_json())
        for replica in cluster["replicas"]:
            replica.catch_up(1)
        # Kill one replica server outright.
        dead = cluster["replica_servers"][1]
        dead.shutdown()
        dead.server_close()
        cluster["router"].probe_all()
        health, _headers = get_json(router_server, "/healthz")
        assert health["replicas_healthy"] == 1
        for _ in range(4):
            pair, headers = get_json(router_server, "/pair/p6a/q6a")
            assert pair["probability"] > 0.9
            assert headers["X-Served-By"] == url_of(cluster["replica_servers"][0])

    def test_all_replicas_dead_falls_back_to_primary(self, cluster):
        router_server = cluster["router_server"]
        post_json(router_server, "/delta", family_delta(6).to_json())
        for server in cluster["replica_servers"]:
            server.shutdown()
            server.server_close()
        cluster["router"].probe_all()
        pair, headers = get_json(router_server, "/pair/p6a/q6a")
        assert pair["probability"] > 0.9
        assert headers["X-Served-By"] == url_of(cluster["primary_server"])
        stats, _headers = get_json(router_server, "/stats")
        assert stats["primary_fallbacks"] >= 1

    def test_replicas_dying_between_probes_still_degrade_to_primary(self, cluster):
        """Forward-time failures (no probe has noticed yet) must not
        turn an unconstrained read into a 503 while the primary is up."""
        router_server = cluster["router_server"]
        post_json(router_server, "/delta", family_delta(6).to_json())
        # Kill both replicas WITHOUT letting the health loop observe it:
        # the router still lists them as healthy candidates.
        for server in cluster["replica_servers"]:
            server.shutdown()
            server.server_close()
        for replica in cluster["router"].replicas:
            replica.healthy = True
        pair, headers = get_json(router_server, "/pair/p6a/q6a")
        assert pair["probability"] > 0.9
        assert headers["X-Served-By"] == url_of(cluster["primary_server"])
        # ...and the failed forwards ejected them for the next read.
        assert all(not replica.healthy for replica in cluster["router"].replicas)

    def test_backend_errors_relay_through(self, cluster):
        router_server = cluster["router_server"]
        with pytest.raises(urllib.error.HTTPError) as error:
            post_json(router_server, "/delta", {"left": {"add": [{"bad": 1}]}})
        assert error.value.code == 400  # the primary's validation answer
        with pytest.raises(urllib.error.HTTPError) as error:
            get_json(router_server, "/pair/p6a/q6a?min_offset=notanumber")
        assert error.value.code == 400  # the router's own validation
